#include "obs/introspect.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "obs/build_info.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"

namespace idf::obs {

namespace {

/// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*; everything else
/// (the registry's dots, mostly) becomes '_'.
std::string SanitizeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                    c == ':';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

/// Splits a registry name "base{k=v,k2=v2}" into a sanitized base and a
/// rendered Prometheus label block (`{k="v",k2="v2"}`, possibly empty).
void SplitTaggedName(const std::string& name, std::string* base,
                     std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    *base = SanitizeName(name);
    labels->clear();
    return;
  }
  *base = SanitizeName(name.substr(0, brace));
  std::string out = "{";
  const std::string inner = name.substr(brace + 1, name.size() - brace - 2);
  size_t pos = 0;
  bool first = true;
  while (pos < inner.size()) {
    size_t comma = inner.find(',', pos);
    if (comma == std::string::npos) comma = inner.size();
    const std::string pair = inner.substr(pos, comma - pos);
    const size_t eq = pair.find('=');
    if (eq != std::string::npos) {
      if (!first) out += ',';
      first = false;
      out += SanitizeName(pair.substr(0, eq));
      out += "=\"";
      out += JsonEscape(pair.substr(eq + 1));  // escapes " and backslash
      out += '"';
    }
    pos = comma + 1;
  }
  out += '}';
  *labels = first ? "" : out;
}

std::string PromNumber(double v) {
  if (v != v) return "NaN";
  if (v == std::numeric_limits<double>::infinity()) return "+Inf";
  if (v == -std::numeric_limits<double>::infinity()) return "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// Merges a label block with an extra `le` label for bucket series.
std::string WithLe(const std::string& labels, const std::string& le) {
  if (labels.empty()) return "{le=\"" + le + "\"}";
  std::string out = labels;
  out.insert(out.size() - 1, ",le=\"" + le + "\"");
  return out;
}

}  // namespace

std::string PrometheusText(const std::vector<MetricSnapshot>& snapshot) {
  std::string out;
  out.reserve(snapshot.size() * 64);
  // One # TYPE line per base name; the snapshot is sorted, and tagged
  // variants of one base (`mem_evictions`, `mem_evictions{executor="1"}`)
  // sort adjacently, so tracking the last emitted base suffices.
  std::string last_typed;
  for (const MetricSnapshot& s : snapshot) {
    std::string base, labels;
    SplitTaggedName(s.name, &base, &labels);
    const char* type = s.kind == MetricKind::kCounter   ? "counter"
                       : s.kind == MetricKind::kGauge   ? "gauge"
                                                        : "histogram";
    if (base != last_typed) {
      out += "# TYPE " + base + " " + type + "\n";
      last_typed = base;
    }
    switch (s.kind) {
      case MetricKind::kCounter:
        out += base + labels + " " + std::to_string(s.counter_value) + "\n";
        break;
      case MetricKind::kGauge:
        out += base + labels + " " + PromNumber(s.gauge_value) + "\n";
        break;
      case MetricKind::kHistogram: {
        // Cumulative buckets from the registry's explicit non-cumulative
        // (upper_bound, count) pairs, closed by the mandatory +Inf bucket.
        uint64_t cumulative = 0;
        for (const auto& [bound, count] : s.buckets) {
          cumulative += count;
          out += base + "_bucket" + WithLe(labels, PromNumber(bound)) + " " +
                 std::to_string(cumulative) + "\n";
        }
        out += base + "_bucket" + WithLe(labels, "+Inf") + " " +
               std::to_string(s.count) + "\n";
        out += base + "_sum" + labels + " " + PromNumber(s.sum) + "\n";
        out += base + "_count" + labels + " " + std::to_string(s.count) + "\n";
        break;
      }
    }
  }
  return out;
}

IntrospectionServer& IntrospectionServer::Global() {
  static IntrospectionServer* server = new IntrospectionServer();
  return *server;
}

IntrospectionServer::~IntrospectionServer() { Stop(); }

Result<uint16_t> IntrospectionServer::Start(uint16_t port) {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (running()) {
    return Status::Unavailable("introspection server already running on port " +
                               std::to_string(port_));
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Unavailable("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Unavailable("cannot bind 127.0.0.1:" +
                               std::to_string(port));
  }
  if (::listen(fd, 16) != 0) {
    ::close(fd);
    return Status::Unavailable("listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread(&IntrospectionServer::ServeLoop, this);
  IDF_LOG_INFO("introspection server listening on 127.0.0.1:%u "
               "(/metrics /events /residency /healthz)",
               port_);
  return port_;
}

void IntrospectionServer::StartFromEnv() {
  const char* env = std::getenv("IDF_OBS_PORT");
  if (env == nullptr || env[0] == '\0') return;
  IntrospectionServer& server = Global();
  if (server.running()) return;
  char* end = nullptr;
  const long port = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || port < 0 || port > 65535) {
    IDF_LOG_WARN("ignoring unparsable IDF_OBS_PORT='%s'", env);
    return;
  }
  Result<uint16_t> started = server.Start(static_cast<uint16_t>(port));
  if (!started.ok()) {
    IDF_LOG_WARN("introspection server failed to start: %s",
                 started.status().message().c_str());
  }
}

void IntrospectionServer::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (!running()) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void IntrospectionServer::AddJsonHandler(const std::string& path,
                                         std::function<std::string()> fn) {
  std::lock_guard<std::mutex> lock(handlers_mutex_);
  handlers_[path] = std::move(fn);
}

void IntrospectionServer::AddPrefixHandler(
    const std::string& prefix, std::function<std::string(const std::string&)> fn) {
  std::lock_guard<std::mutex> lock(handlers_mutex_);
  prefix_handlers_[prefix] = std::move(fn);
}

void IntrospectionServer::ServeLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stop_
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    HandleConnection(conn);
    ::close(conn);
  }
}

void IntrospectionServer::HandleConnection(int fd) {
  char buf[4096];
  const ssize_t n = ::recv(fd, buf, sizeof(buf) - 1, 0);
  if (n <= 0) return;
  buf[n] = '\0';
  // "GET /path?query HTTP/1.x" — we only care about the method and path.
  std::string target;
  if (std::strncmp(buf, "GET ", 4) == 0) {
    const char* start = buf + 4;
    const char* end = std::strchr(start, ' ');
    if (end != nullptr) target.assign(start, end);
  }
  std::string query;
  std::string path = target;
  const size_t qmark = target.find('?');
  if (qmark != std::string::npos) {
    path = target.substr(0, qmark);
    query = target.substr(qmark + 1);
  }

  std::string body;
  std::string content_type = "text/plain; charset=utf-8";
  int status = 200;
  const char* reason = "OK";
  if (target.empty()) {
    status = 400;
    reason = "Bad Request";
    body = "only GET is served here\n";
  } else if (path == "/healthz") {
    // Liveness plus build identity: which binary is this, exactly.
    content_type = "application/json";
    body = BuildInfoJson() + "\n";
  } else if (path == "/metrics") {
    content_type = "text/plain; version=0.0.4; charset=utf-8";
    body = PrometheusText(Registry::Global().Snapshot());
  } else if (path == "/events") {
    // n= is advisory: malformed values fall back to the default, oversize
    // values clamp to the ring capacity — a bad scrape never errors or
    // over-allocates.
    size_t limit = 512;
    if (query.rfind("n=", 0) == 0) {
      const long parsed = std::strtol(query.c_str() + 2, nullptr, 10);
      if (parsed > 0) limit = static_cast<size_t>(parsed);
    }
    limit = std::min(limit, FlightRecorder::Global().capacity());
    content_type = "application/x-ndjson";
    body = FlightRecorder::Global().ToJsonl(limit);
  } else {
    std::function<std::string()> handler;
    std::function<std::string(const std::string&)> prefix_handler;
    {
      std::lock_guard<std::mutex> lock(handlers_mutex_);
      auto it = handlers_.find(path);
      if (it != handlers_.end()) {
        handler = it->second;
      } else {
        // Longest matching prefix wins (std::map iterates sorted, so a
        // later match is longer or disjoint).
        for (const auto& [prefix, fn] : prefix_handlers_) {
          if (path.rfind(prefix, 0) == 0) prefix_handler = fn;
        }
      }
    }
    std::string handled;
    if (handler) {
      handled = handler();
    } else if (prefix_handler) {
      handled = prefix_handler(path);
    }
    if (!handled.empty()) {
      content_type = "application/json";
      body = std::move(handled);
    } else {
      status = 404;
      reason = "Not Found";
      body = "unknown path; try /metrics /events /residency /queries "
             "/healthz\n";
    }
  }

  std::string response = "HTTP/1.0 " + std::to_string(status) + " " + reason +
                         "\r\nContent-Type: " + content_type +
                         "\r\nContent-Length: " + std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" + body;
  size_t off = 0;
  while (off < response.size()) {
    const ssize_t sent = ::send(fd, response.data() + off,
                                response.size() - off, MSG_NOSIGNAL);
    if (sent <= 0) break;
    off += static_cast<size_t>(sent);
  }
}

}  // namespace idf::obs
