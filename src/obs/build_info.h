// Build metadata for /healthz and crash journals: which binary is this,
// exactly, and how long has it been up. The git sha, build type, and
// sanitizer flags are baked in at compile time (src/obs/CMakeLists.txt
// stamps them onto build_info.cpp only, so a new commit recompiles one TU).
#pragma once

#include <string>

namespace idf::obs {

struct BuildInfo {
  const char* git_sha;     // "unknown" outside a git checkout
  const char* build_type;  // CMAKE_BUILD_TYPE
  const char* sanitizer;   // IDF_SANITIZE value, "none" when plain
};

/// The compiled-in build identity. Also latches the process-uptime epoch on
/// first call (the flight recorder calls it at construction).
const BuildInfo& GetBuildInfo();

/// Seconds since the uptime epoch was latched.
double UptimeSeconds();

/// Compact one-line summary ("sha=<sha> build=<type> san=<flags>") — the
/// interned flight-recorder name of the build_info event.
std::string BuildInfoSummary();

/// The /healthz document: {"status":"ok","git_sha":...,"build_type":...,
/// "sanitizer":...,"uptime_seconds":...}.
std::string BuildInfoJson();

}  // namespace idf::obs
