#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "obs/metrics_registry.h"

namespace idf::obs {

namespace {

/// Innermost live span per thread, for parent links.
thread_local std::vector<uint64_t> t_span_stack;
thread_local Tracer::ThreadBuffer* t_buffer = nullptr;

bool TraceEnabledFromEnv() {
  const char* v = std::getenv("IDF_TRACE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

std::string ArgsJson(const TraceEvent& ev) {
  std::string out = "{";
  for (size_t i = 0; i < ev.args.size(); ++i) {
    if (i) out += ",";
    out += "\"" + JsonEscape(ev.args[i].first) + "\":" + ev.args[i].second;
  }
  out += "}";
  return out;
}

std::string EventJson(const TraceEvent& ev, bool chrome) {
  std::string out = "{\"name\":\"" + JsonEscape(ev.name) + "\",\"cat\":\"" +
                    JsonEscape(ev.category) + "\",";
  if (chrome) out += "\"ph\":\"X\",\"pid\":1,";
  out += "\"ts\":" + std::to_string(ev.start_us) +
         ",\"dur\":" + std::to_string(ev.dur_us) +
         ",\"tid\":" + std::to_string(ev.tid);
  // Span links ride in args so Chrome renders them in the detail pane.
  std::string args = "{\"span_id\":" + std::to_string(ev.span_id) +
                     ",\"parent_id\":" + std::to_string(ev.parent_id);
  for (const auto& [key, value] : ev.args) {
    args += ",\"" + JsonEscape(key) + "\":" + value;
  }
  args += "}";
  if (chrome) {
    out += ",\"args\":" + args;
  } else {
    out += ",\"id\":" + std::to_string(ev.span_id) +
           ",\"parent\":" + std::to_string(ev.parent_id) +
           ",\"args\":" + ArgsJson(ev);
  }
  out += "}";
  return out;
}

std::string NumJson(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {
  enabled_.store(TraceEnabledFromEnv(), std::memory_order_relaxed);
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

uint64_t Tracer::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

Tracer::ThreadBuffer& Tracer::LocalBuffer() {
  if (t_buffer == nullptr) {
    auto buffer = std::make_shared<ThreadBuffer>();
    buffer->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(buffers_mutex_);
      buffers_.push_back(buffer);
    }
    // The tracer is process-lived (leaked singleton), so the raw cache
    // cannot dangle; the shared_ptr keeps the buffer alive past thread exit.
    t_buffer = buffer.get();
  }
  return *t_buffer;
}

void Tracer::Record(TraceEvent event) {
  ThreadBuffer& buffer = LocalBuffer();
  event.tid = buffer.tid;
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(buffers_mutex_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> out;
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    out.insert(out.end(), buffer->events.begin(), buffer->events.end());
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a,
                                       const TraceEvent& b) {
    return a.start_us != b.start_us ? a.start_us < b.start_us
                                    : a.span_id < b.span_id;
  });
  return out;
}

void Tracer::Clear() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(buffers_mutex_);
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) {
    std::lock_guard<std::mutex> lock(buffer->mutex);
    buffer->events.clear();
  }
}

std::string Tracer::ToChromeJson() const {
  std::string out = "{\"traceEvents\":[";
  const std::vector<TraceEvent> events = Snapshot();
  for (size_t i = 0; i < events.size(); ++i) {
    if (i) out += ",";
    out += EventJson(events[i], /*chrome=*/true);
  }
  out += "]}";
  return out;
}

std::string Tracer::ToJsonl() const {
  std::string out;
  for (const TraceEvent& ev : Snapshot()) {
    out += EventJson(ev, /*chrome=*/false);
    out += "\n";
  }
  return out;
}

Status Tracer::WriteString(const std::string& path,
                           const std::string& body) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Unavailable("cannot open trace file '" + path + "'");
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size()) {
    return Status::Unavailable("short write to trace file '" + path + "'");
  }
  return Status::OK();
}

Status Tracer::WriteChromeJson(const std::string& path) const {
  return WriteString(path, ToChromeJson());
}

Status Tracer::WriteJsonl(const std::string& path) const {
  return WriteString(path, ToJsonl());
}

Span::Span(const char* category, std::string name) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  active_ = true;
  event_.name = std::move(name);
  event_.category = category;
  event_.start_us = tracer.NowMicros();
  event_.span_id = tracer.next_span_id_.fetch_add(1, std::memory_order_relaxed);
  event_.parent_id = t_span_stack.empty() ? 0 : t_span_stack.back();
  t_span_stack.push_back(event_.span_id);
}

Span::Span(const char* category, std::string name, uint64_t parent_id) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  active_ = true;
  event_.name = std::move(name);
  event_.category = category;
  event_.start_us = tracer.NowMicros();
  event_.span_id = tracer.next_span_id_.fetch_add(1, std::memory_order_relaxed);
  event_.parent_id = parent_id;
  t_span_stack.push_back(event_.span_id);
}

void Span::End() {
  if (!active_) return;
  active_ = false;
  Tracer& tracer = Tracer::Global();
  event_.dur_us = tracer.NowMicros() - event_.start_us;
  // Pop this span (spans are strictly nested per thread by construction).
  if (!t_span_stack.empty() && t_span_stack.back() == event_.span_id) {
    t_span_stack.pop_back();
  }
  tracer.Record(std::move(event_));
}

void Span::AddArg(const char* key, const std::string& value) {
  if (!active_) return;
  event_.args.emplace_back(key, "\"" + JsonEscape(value) + "\"");
}

void Span::AddArgInt(const char* key, uint64_t value) {
  if (!active_) return;
  event_.args.emplace_back(key, std::to_string(value));
}

void Span::AddArgNum(const char* key, double value) {
  if (!active_) return;
  event_.args.emplace_back(key, NumJson(value));
}

uint64_t Span::CurrentId() {
  return t_span_stack.empty() ? 0 : t_span_stack.back();
}

}  // namespace idf::obs
