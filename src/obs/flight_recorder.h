// Flight recorder (observability v2, part 1): an always-on, lock-free,
// fixed-size ring buffer of compact structured events — the last N things
// the engine's hot machinery actually did, available at any moment and
// especially at the moment of death.
//
// Why a ring and not the metrics registry: counters tell you *how many*
// evictions happened over the process lifetime; a memory-pressure bug needs
// to know *which* eviction ran between which two tasks. Why not spans: the
// tracer allocates per event and is off by default; the recorder is cheap
// enough (one relaxed fetch_add plus five relaxed word stores) to stay on
// permanently, even in benches measuring the scheduler itself.
//
// Writers never block and never allocate. Each ring slot is a small seqlock:
// a writer claims a ticket with one fetch_add, writes the five payload words
// (relaxed atomics — multi-writer lapping is race-free by construction),
// then publishes the slot by storing ticket+1 into the slot's sequence word
// with release order. Snapshot readers validate the sequence before and
// after copying a slot and drop slots a concurrent writer is overwriting —
// a flight recorder tolerates losing an event it is in the middle of
// replacing anyway.
//
// Event payloads are three uint64 words (a, b, c) plus an interned name id
// and the owning query id (q — stamped from the thread's QueryScope, see
// obs/query_profile.h). Names (stage names, mostly) intern into a fixed
// char pool so the fatal-signal dump path can read them without touching
// the heap. The per-type payload conventions are listed next to EventType
// below and mirrored in tools/idf_events.py.
//
// Ring size: 1 << IDF_EVENTS_RING_POW2 events (default 1 << 16), read once
// at construction. Overwrites of not-yet-dumped slots count into the
// obs.ring.lapped metric so journal truncation is visible on /metrics.
//
// Crash dumps: InstallCrashHandler() (done automatically by the Cluster
// constructor when IDF_EVENTS_DIR is set) registers handlers for the fatal
// signals; on SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL the ring is written as
// JSONL to IDF_EVENTS_DIR/idf-crash-<pid>.events.jsonl using only
// async-signal-safe calls (open/write, hand-rolled formatting), then the
// default disposition is restored and the signal re-raised.
//
// IDF_FLIGHT_RECORDER=0 disables recording (for A/B overhead measurements;
// see EXPERIMENTS.md — the recorder-on cost is within noise).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace idf::obs {

/// Compact event kinds. Payload conventions (a, b, c):
enum class EventType : uint8_t {
  kTaskStart = 1,      // name=stage  a=task index  b=executor     c=0
  kTaskFinish = 2,     // name=stage  a=task index  b=executor     c=micros
  kTaskFail = 3,       // name=stage  a=task index  b=executor     c=micros
  kSteal = 4,          // name=stage  a=task index  b=host worker  c=0
  kResidentHit = 5,    // name=stage  a=task index  b=0            c=0
  kResidentMiss = 6,   // name=stage  a=task index  b=0            c=0
  kEvict = 7,          //             a=payload B   b=owner rdd    c=shard
  kSpillWrite = 8,     //             a=bytes       b=owner rdd    c=shard
  kReloadDemand = 9,   //             a=bytes       b=owner rdd    c=shard
  kReloadPrefetch = 10,//             a=bytes       b=owner rdd    c=shard
  kPrefetchSkip = 11,  //             a=bytes       b=owner rdd    c=shard
  kBatchSeal = 12,     //             a=payload B   b=owner rdd    c=shard
  kRecoveryBlock = 13, //             a=rdd         b=partition    c=micros
  kExecutorKill = 14,  //             a=executor    b=blocks lost  c=0
  kCrash = 15,         //             a=signal      b=0            c=0
  kShufflePush = 16,   //             a=bytes       b=map task     c=reduce part
  kShuffleDrain = 17,  //             a=bytes       b=map task     c=reduce part
  kShuffleStall = 18,  //             a=micros      b=task index   c=0 push / 1 drain
  // Query-service lifecycle (src/server/query_service.h). a=query id for
  // all of them; name = the query's label when one was given.
  kQuerySubmit = 19,   //             a=query id    b=reserved B   c=queue depth
  kQueryAdmit = 20,    //             a=query id    b=reserved B   c=queued micros
  kQueryReject = 21,   //             a=query id    b=reserved B   c=0 queue full / 1 reservation
  kQueryStart = 22,    //             a=query id    b=reserved B   c=priority
  kQueryFinish = 23,   //             a=query id    b=status code  c=run micros
  kQueryCancel = 24,   //             a=query id    b=0 queued / 1 running  c=micros since submit
  kQueryDeadline = 25, //             a=query id    b=0 queued / 1 running  c=micros since submit
  // Chaos engine (src/testing/chaos.h). kChaosFault packs the injection
  // site and fault kind into a (site << 8 | fault); b is the stable logical
  // key the decision hashed, c a fault-specific aux (delay micros, reload
  // ordinal, evicted count).
  kChaosArm = 26,      //             a=seed        b=0            c=0
  kChaosFault = 27,    //             a=site<<8|kind  b=decision key  c=aux
  // Build identity (obs/build_info.h): name = "sha=.. build=.. san=..".
  // Recorded once at construction and again by the crash handler so every
  // journal — however lapped — says which binary wrote it.
  kBuildInfo = 28,     //             a=uptime secs b=0            c=0
};

/// Stable wire name for an event type ("task_start", "evict", ...); used by
/// the JSONL dump and tools/idf_events.py. Unknown types render as "event".
const char* EventTypeName(EventType type);

/// One event copied out of the ring (Snapshot / dump paths).
struct FlightEvent {
  uint64_t seq = 0;    // global ticket — total order across threads
  uint64_t ts_us = 0;  // microseconds since the recorder's construction
  EventType type = EventType::kCrash;
  uint32_t tid = 0;    // dense per-thread id, 1-based, first-record order
  uint64_t q = 0;      // owning query id (obs/query_profile.h); 0 = none
  std::string name;    // interned name ("" when the event carries none)
  uint64_t a = 0, b = 0, c = 0;
};

/// One event rendered as its JSONL object (same encoding as ToJsonl, for
/// callers composing filtered slices, e.g. /queries/<id>).
std::string EventJson(const FlightEvent& event);

class Counter;

class FlightRecorder {
 public:
  /// Default ring capacity in events (~4 MB resident). The actual capacity
  /// is set once at construction from IDF_EVENTS_RING_POW2 (see
  /// RingCapacityFromEnv); this constant is the fallback.
  static constexpr size_t kCapacity = 1u << 16;

  /// Capacity the recorder would use given the current environment:
  /// 1 << IDF_EVENTS_RING_POW2, clamped to [10, 24]; kCapacity when the
  /// variable is unset or unparsable. Exposed for tests — the global
  /// recorder reads it exactly once.
  static size_t RingCapacityFromEnv();

  /// The process-wide recorder. Recording starts enabled unless
  /// IDF_FLIGHT_RECORDER=0 was exported before first use.
  static FlightRecorder& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Interns `name` into the fixed pool, returning its id (0 = no name).
  /// Idempotent per string; cold path (mutex + map). Callers cache the id —
  /// e.g. once per RunStage, not per task. When the pool is full, returns
  /// the id of the sentinel name "<pool-full>" rather than failing.
  uint32_t InternName(const std::string& name);

  /// Records one event. Lock-free, allocation-free, ~10ns: a relaxed
  /// fetch_add to claim a slot plus relaxed stores. Safe from any thread.
  /// The event is stamped with the thread's current query id and, for
  /// cost-shaped types (steal, residency, spill/reload bytes, shuffle
  /// stalls, task finish), also folded into the thread's QueryProfile —
  /// attribution rides the existing event stream instead of a second set
  /// of instrumentation sites.
  void Record(EventType type, uint32_t name_id, uint64_t a, uint64_t b,
              uint64_t c);

  /// Microseconds since construction (the event clock).
  uint64_t NowMicros() const;

  /// Actual ring capacity (power of two; see RingCapacityFromEnv).
  size_t capacity() const { return capacity_; }

  /// Events recorded since process start (monotonic; ring keeps the last
  /// capacity() of them).
  uint64_t total_recorded() const {
    return head_.load(std::memory_order_relaxed);
  }

  /// Resolves an interned name id ("" for 0 / out of range). Stable for the
  /// process lifetime; safe from any thread.
  const char* NameForId(uint32_t id) const { return NameAt(id); }

  /// Copies out up to `max_events` of the newest valid events, oldest
  /// first (0 = the whole ring). Slots mid-overwrite are skipped.
  std::vector<FlightEvent> Snapshot(size_t max_events = 0) const;

  /// The snapshot as JSONL, one event object per line:
  ///   {"seq":..,"ts_us":..,"type":"evict","tid":..,"name":"..",
  ///    "a":..,"b":..,"c":..}
  std::string ToJsonl(size_t max_events = 0) const;

  /// Writes ToJsonl(max_events) to `path`.
  Status DumpJsonl(const std::string& path, size_t max_events = 0) const;

  /// Async-signal-safe dump of the ring tail to an open fd — write(2) and
  /// preallocated buffers only. Returns the number of events written.
  /// Public so tests can exercise the crash-dump encoder without dying.
  size_t DumpToFd(int fd, size_t max_events = 0) const;

  /// Records a kBuildInfo event using the name interned at construction.
  /// Allocation-free (async-signal-safe); the crash handler calls it so a
  /// lapped ring still identifies the binary.
  void RecordBuildInfo();

  /// Installs fatal-signal handlers (SEGV/ABRT/BUS/FPE/ILL) that dump the
  /// ring to <dir>/idf-crash-<pid>.events.jsonl and re-raise. `dir` empty
  /// means $IDF_EVENTS_DIR, falling back to the current directory.
  /// Idempotent; the first call wins.
  static void InstallCrashHandler(const std::string& dir = "");

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

 private:
  FlightRecorder();

  /// One ring slot: a per-slot seqlock. seq == ticket+1 publishes the
  /// payload words; 0 means never written or mid-write.
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> ts{0};
    std::atomic<uint64_t> meta{0};  // type(8) | tid(24) | name(32)
    std::atomic<uint64_t> q{0};     // owning query id
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
    std::atomic<uint64_t> c{0};
  };

  /// Raw (still-packed) copy of one slot, validated against its seqlock.
  struct RawEvent {
    uint64_t seq, ts, meta, q, a, b, c;
  };

  /// Copies the newest valid slots, oldest first, into `out` (fixed caller
  /// buffer, no allocation — shared by Snapshot and the signal-safe dump).
  size_t CopyValid(RawEvent* out, size_t max_events) const;

  const char* NameAt(uint32_t id) const;  // "" for 0 / out of range

  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> head_{0};
  uint64_t epoch_ns_ = 0;  // steady_clock at construction
  size_t capacity_ = kCapacity;  // power of two, fixed at construction
  uint64_t mask_ = kCapacity - 1;
  std::vector<Slot> slots_;
  Counter* lapped_ = nullptr;  // obs.ring.lapped — overwritten-slot count
  uint32_t build_info_name_id_ = 0;  // interned at ctor for the crash path
  // Preallocated CopyValid buffer for the signal-safe dump (the crash path
  // must not allocate; exclusivity via the crash handler's dumping flag).
  std::unique_ptr<RawEvent[]> dump_buffer_;

  // Interned names: a fixed char pool + offset table so the signal handler
  // can resolve ids without the heap. Writers append under names_mutex_;
  // readers only consult entries below num_names_ (release/acquire pair).
  static constexpr uint32_t kMaxNames = 1024;
  static constexpr size_t kNamePoolBytes = 64 * 1024;
  std::mutex names_mutex_;
  std::unordered_map<std::string, uint32_t> name_ids_;
  uint32_t name_offset_[kMaxNames] = {};
  char name_pool_[kNamePoolBytes] = {};
  size_t name_pool_used_ = 0;          // guarded by names_mutex_
  std::atomic<uint32_t> num_names_{1};  // id 0 reserved for "no name"
  uint32_t pool_full_id_ = 0;          // "<pool-full>" sentinel, set in ctor
};

}  // namespace idf::obs
