#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "obs/build_info.h"
#include "obs/metrics_registry.h"
#include "obs/query_profile.h"

namespace idf::obs {

namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Dense per-thread id for event attribution, assigned on first record.
uint32_t ThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

constexpr uint64_t PackMeta(EventType type, uint32_t tid, uint32_t name_id) {
  return static_cast<uint64_t>(static_cast<uint8_t>(type)) |
         (static_cast<uint64_t>(tid & 0xFFFFFFu) << 8) |
         (static_cast<uint64_t>(name_id) << 32);
}

// ---- async-signal-safe formatting ----------------------------------------
//
// The crash path may not call snprintf (not on the POSIX async-signal-safe
// list) or anything that allocates, so event lines are rendered by hand
// into a caller-provided buffer.

/// Appends `s` to buf (bounded); returns new length.
size_t AppendStr(char* buf, size_t len, size_t cap, const char* s) {
  while (*s != '\0' && len + 1 < cap) buf[len++] = *s++;
  return len;
}

size_t AppendU64(char* buf, size_t len, size_t cap, uint64_t v) {
  char digits[20];
  int n = 0;
  do {
    digits[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0 && len + 1 < cap) buf[len++] = digits[--n];
  return len;
}

/// Appends `s` JSON-escaped (quotes, backslashes, control bytes).
size_t AppendJsonStr(char* buf, size_t len, size_t cap, const char* s) {
  for (; *s != '\0' && len + 7 < cap; ++s) {
    const unsigned char ch = static_cast<unsigned char>(*s);
    if (ch == '"' || ch == '\\') {
      buf[len++] = '\\';
      buf[len++] = static_cast<char>(ch);
    } else if (ch < 0x20) {
      static const char* hex = "0123456789abcdef";
      len = AppendStr(buf, len, cap, "\\u00");
      buf[len++] = hex[ch >> 4];
      buf[len++] = hex[ch & 0xF];
    } else {
      buf[len++] = static_cast<char>(ch);
    }
  }
  return len;
}

/// Renders one event as a JSONL line (without trailing newline appended by
/// the caller). Returns the line length.
size_t FormatEventLine(char* buf, size_t cap, uint64_t seq, uint64_t ts_us,
                       EventType type, uint32_t tid, uint64_t q,
                       const char* name, uint64_t a, uint64_t b, uint64_t c) {
  size_t len = 0;
  len = AppendStr(buf, len, cap, "{\"seq\":");
  len = AppendU64(buf, len, cap, seq);
  len = AppendStr(buf, len, cap, ",\"ts_us\":");
  len = AppendU64(buf, len, cap, ts_us);
  len = AppendStr(buf, len, cap, ",\"type\":\"");
  len = AppendStr(buf, len, cap, EventTypeName(type));
  len = AppendStr(buf, len, cap, "\",\"tid\":");
  len = AppendU64(buf, len, cap, tid);
  len = AppendStr(buf, len, cap, ",\"q\":");
  len = AppendU64(buf, len, cap, q);
  if (name != nullptr && name[0] != '\0') {
    len = AppendStr(buf, len, cap, ",\"name\":\"");
    len = AppendJsonStr(buf, len, cap, name);
    len = AppendStr(buf, len, cap, "\"");
  }
  len = AppendStr(buf, len, cap, ",\"a\":");
  len = AppendU64(buf, len, cap, a);
  len = AppendStr(buf, len, cap, ",\"b\":");
  len = AppendU64(buf, len, cap, b);
  len = AppendStr(buf, len, cap, ",\"c\":");
  len = AppendU64(buf, len, cap, c);
  len = AppendStr(buf, len, cap, "}");
  return len;
}

void WriteAll(int fd, const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n <= 0) return;  // best effort — we may be dying
    off += static_cast<size_t>(n);
  }
}

// ---- crash handler state --------------------------------------------------

struct CrashState {
  std::atomic<bool> installed{false};
  std::atomic<bool> dumping{false};
  char dir[512] = {};
  struct sigaction previous[5] = {};
};

CrashState& Crash() {
  static CrashState* state = new CrashState();
  return *state;
}

constexpr int kFatalSignals[5] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};

void CrashSignalHandler(int signo) {
  CrashState& crash = Crash();
  // A fault inside the dump (or a second faulting thread) must not recurse.
  if (!crash.dumping.exchange(true)) {
    FlightRecorder& fr = FlightRecorder::Global();
    fr.RecordBuildInfo();
    fr.Record(EventType::kCrash, 0, static_cast<uint64_t>(signo), 0, 0);
    char path[600];
    size_t len = 0;
    len = AppendStr(path, len, sizeof(path), crash.dir);
    len = AppendStr(path, len, sizeof(path), "/idf-crash-");
    len = AppendU64(path, len, sizeof(path),
                    static_cast<uint64_t>(::getpid()));
    len = AppendStr(path, len, sizeof(path), ".events.jsonl");
    path[len] = '\0';
    const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      fr.DumpToFd(fd);
      ::close(fd);
      const char* msg = "flight recorder: crash journal written to ";
      WriteAll(2, msg, std::strlen(msg));
      WriteAll(2, path, len);
      WriteAll(2, "\n", 1);
    }
  }
  // Restore the original disposition and re-raise so the process still dies
  // with the right signal (core dumps, gtest death tests, CI reporting).
  for (size_t i = 0; i < 5; ++i) {
    if (kFatalSignals[i] == signo) {
      ::sigaction(signo, &crash.previous[i], nullptr);
      break;
    }
  }
  ::raise(signo);
}

}  // namespace

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kTaskStart: return "task_start";
    case EventType::kTaskFinish: return "task_finish";
    case EventType::kTaskFail: return "task_fail";
    case EventType::kSteal: return "steal";
    case EventType::kResidentHit: return "resident_hit";
    case EventType::kResidentMiss: return "resident_miss";
    case EventType::kEvict: return "evict";
    case EventType::kSpillWrite: return "spill_write";
    case EventType::kReloadDemand: return "reload_demand";
    case EventType::kReloadPrefetch: return "reload_prefetch";
    case EventType::kPrefetchSkip: return "prefetch_skip";
    case EventType::kBatchSeal: return "batch_seal";
    case EventType::kRecoveryBlock: return "recovery_block";
    case EventType::kExecutorKill: return "executor_kill";
    case EventType::kCrash: return "crash";
    case EventType::kShufflePush: return "shuffle_push";
    case EventType::kShuffleDrain: return "shuffle_drain";
    case EventType::kShuffleStall: return "shuffle_stall";
    case EventType::kQuerySubmit: return "query_submit";
    case EventType::kQueryAdmit: return "query_admit";
    case EventType::kQueryReject: return "query_reject";
    case EventType::kQueryStart: return "query_start";
    case EventType::kQueryFinish: return "query_finish";
    case EventType::kQueryCancel: return "query_cancel";
    case EventType::kQueryDeadline: return "query_deadline";
    case EventType::kChaosArm: return "chaos_arm";
    case EventType::kChaosFault: return "chaos_fault";
    case EventType::kBuildInfo: return "build_info";
  }
  return "event";
}

std::string EventJson(const FlightEvent& event) {
  char line[1024];
  const size_t len =
      FormatEventLine(line, sizeof(line), event.seq, event.ts_us, event.type,
                      event.tid, event.q, event.name.c_str(), event.a,
                      event.b, event.c);
  return std::string(line, len);
}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

size_t FlightRecorder::RingCapacityFromEnv() {
  const char* env = std::getenv("IDF_EVENTS_RING_POW2");
  if (env == nullptr || env[0] == '\0') return kCapacity;
  char* end = nullptr;
  const long pow2 = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || pow2 < 10 || pow2 > 24) {
    IDF_LOG_WARN("ignoring IDF_EVENTS_RING_POW2='%s' (want 10..24)", env);
    return kCapacity;
  }
  return static_cast<size_t>(1) << pow2;
}

FlightRecorder::FlightRecorder()
    : capacity_(RingCapacityFromEnv()),
      mask_(capacity_ - 1),
      slots_(capacity_),
      dump_buffer_(new RawEvent[capacity_]) {
  epoch_ns_ = SteadyNowNs();
  if (const char* env = std::getenv("IDF_FLIGHT_RECORDER")) {
    if (env[0] == '0' && env[1] == '\0') {
      enabled_.store(false, std::memory_order_relaxed);
    }
  }
  pool_full_id_ = InternName("<pool-full>");
  // Resolved here, never in Record: the lapped counter makes journal
  // truncation visible on /metrics instead of silent.
  lapped_ = &Registry::Global().GetCounter("obs.ring.lapped");
  build_info_name_id_ = InternName(BuildInfoSummary());
  RecordBuildInfo();
}

void FlightRecorder::RecordBuildInfo() {
  Record(EventType::kBuildInfo, build_info_name_id_,
         static_cast<uint64_t>(UptimeSeconds()), 0, 0);
}

uint64_t FlightRecorder::NowMicros() const {
  return (SteadyNowNs() - epoch_ns_) / 1000;
}

uint32_t FlightRecorder::InternName(const std::string& name) {
  if (name.empty()) return 0;
  std::lock_guard<std::mutex> lock(names_mutex_);
  auto it = name_ids_.find(name);
  if (it != name_ids_.end()) return it->second;
  const uint32_t id = num_names_.load(std::memory_order_relaxed);
  if (id >= kMaxNames || name_pool_used_ + name.size() + 1 > kNamePoolBytes) {
    // Pool exhausted: map everything else onto the sentinel interned at
    // construction, so the event still dumps (name lost, event kept).
    return pool_full_id_;
  }
  name_offset_[id] = static_cast<uint32_t>(name_pool_used_);
  std::memcpy(name_pool_ + name_pool_used_, name.data(), name.size());
  name_pool_used_ += name.size();
  name_pool_[name_pool_used_++] = '\0';
  name_ids_.emplace(name, id);
  num_names_.store(id + 1, std::memory_order_release);
  return id;
}

const char* FlightRecorder::NameAt(uint32_t id) const {
  if (id == 0 || id >= num_names_.load(std::memory_order_acquire)) return "";
  return name_pool_ + name_offset_[id];
}

void FlightRecorder::Record(EventType type, uint32_t name_id, uint64_t a,
                            uint64_t b, uint64_t c) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  const uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed);
  if (ticket >= capacity_) lapped_->Increment();  // overwrote an old event
  Slot& slot = slots_[ticket & mask_];
  // Invalidate, write payload, publish. All payload words are relaxed
  // atomics: a lapping writer racing this slot produces a seq mismatch the
  // reader discards, never a torn word or a TSan race.
  slot.seq.store(0, std::memory_order_release);
  slot.ts.store(NowMicros(), std::memory_order_relaxed);
  slot.meta.store(PackMeta(type, ThreadId(), name_id),
                  std::memory_order_relaxed);
  slot.q.store(CurrentQueryId(), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.c.store(c, std::memory_order_relaxed);
  slot.seq.store(ticket + 1, std::memory_order_release);

  // Per-query attribution rides the event stream: every branch below has a
  // 1:1 co-located metric increment at its Record call site, which is what
  // the conservation gate (tests/query_profile_test.cpp) checks. Types not
  // listed (query lifecycle, crash, build info, chaos) cost nothing here —
  // in particular the crash path never resolves a profile (mutex).
  switch (type) {
    case EventType::kTaskFinish:
      CurrentQueryProfile()->OnTaskDone(name_id, c, /*failed=*/false);
      break;
    case EventType::kTaskFail:
      CurrentQueryProfile()->OnTaskDone(name_id, c, /*failed=*/true);
      break;
    case EventType::kSteal:
      CurrentQueryProfile()->steals.fetch_add(1, std::memory_order_relaxed);
      break;
    case EventType::kResidentHit:
      CurrentQueryProfile()->resident_hits.fetch_add(
          1, std::memory_order_relaxed);
      break;
    case EventType::kResidentMiss:
      CurrentQueryProfile()->resident_misses.fetch_add(
          1, std::memory_order_relaxed);
      break;
    case EventType::kEvict:
      CurrentQueryProfile()->evictions.fetch_add(1, std::memory_order_relaxed);
      break;
    case EventType::kSpillWrite:
      CurrentQueryProfile()->bytes_spilled.fetch_add(
          a, std::memory_order_relaxed);
      break;
    case EventType::kReloadDemand:
      CurrentQueryProfile()->bytes_reloaded.fetch_add(
          a, std::memory_order_relaxed);
      break;
    case EventType::kReloadPrefetch:
      CurrentQueryProfile()->bytes_prefetched.fetch_add(
          a, std::memory_order_relaxed);
      break;
    case EventType::kPrefetchSkip:
      CurrentQueryProfile()->prefetch_skips.fetch_add(
          1, std::memory_order_relaxed);
      break;
    case EventType::kShuffleStall:
      CurrentQueryProfile()->shuffle_stall_us.fetch_add(
          a, std::memory_order_relaxed);
      break;
    case EventType::kShufflePush:
      CurrentQueryProfile()->shuffle_pushed_bytes.fetch_add(
          a, std::memory_order_relaxed);
      break;
    default:
      break;
  }
}

size_t FlightRecorder::CopyValid(RawEvent* out, size_t max_events) const {
  const uint64_t head = head_.load(std::memory_order_acquire);
  const uint64_t window = std::min<uint64_t>(head, capacity_);
  uint64_t want = window;
  if (max_events > 0) want = std::min<uint64_t>(want, max_events);
  size_t n = 0;
  for (uint64_t ticket = head - want; ticket < head; ++ticket) {
    const Slot& slot = slots_[ticket & mask_];
    const uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
    RawEvent raw;
    raw.ts = slot.ts.load(std::memory_order_relaxed);
    raw.meta = slot.meta.load(std::memory_order_relaxed);
    raw.q = slot.q.load(std::memory_order_relaxed);
    raw.a = slot.a.load(std::memory_order_relaxed);
    raw.b = slot.b.load(std::memory_order_relaxed);
    raw.c = slot.c.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    const uint64_t seq_after = slot.seq.load(std::memory_order_relaxed);
    // Valid only if the slot still holds this ticket's event (not zeroed by
    // a writer mid-update, not already lapped by a newer ticket).
    if (seq_before != ticket + 1 || seq_after != ticket + 1) continue;
    raw.seq = ticket;
    out[n++] = raw;
  }
  return n;
}

std::vector<FlightEvent> FlightRecorder::Snapshot(size_t max_events) const {
  std::vector<RawEvent> raw(std::min<size_t>(
      max_events == 0 ? capacity_ : max_events, capacity_));
  const size_t n = CopyValid(raw.data(), raw.size());
  std::vector<FlightEvent> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    FlightEvent e;
    e.seq = raw[i].seq;
    e.ts_us = raw[i].ts;
    e.type = static_cast<EventType>(raw[i].meta & 0xFF);
    e.tid = static_cast<uint32_t>((raw[i].meta >> 8) & 0xFFFFFFu);
    e.q = raw[i].q;
    e.name = NameAt(static_cast<uint32_t>(raw[i].meta >> 32));
    e.a = raw[i].a;
    e.b = raw[i].b;
    e.c = raw[i].c;
    out.push_back(std::move(e));
  }
  return out;
}

std::string FlightRecorder::ToJsonl(size_t max_events) const {
  const std::vector<FlightEvent> events = Snapshot(max_events);
  std::string out;
  out.reserve(events.size() * 96);
  char line[1024];
  for (const FlightEvent& e : events) {
    const size_t len =
        FormatEventLine(line, sizeof(line), e.seq, e.ts_us, e.type, e.tid,
                        e.q, e.name.c_str(), e.a, e.b, e.c);
    out.append(line, len);
    out.push_back('\n');
  }
  return out;
}

Status FlightRecorder::DumpJsonl(const std::string& path,
                                 size_t max_events) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Unavailable("cannot open events file '" + path + "'");
  }
  const std::string body = ToJsonl(max_events);
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  if (written != body.size()) {
    return Status::Unavailable("short write to events file '" + path + "'");
  }
  return Status::OK();
}

size_t FlightRecorder::DumpToFd(int fd, size_t max_events) const {
  // Preallocated buffer (ctor): the crash path must not allocate. The
  // dumping flag in CrashSignalHandler (and single-threaded test use)
  // keeps this exclusive.
  RawEvent* raw = dump_buffer_.get();
  const size_t n = CopyValid(raw, max_events == 0 ? capacity_ : max_events);
  char line[1024];
  for (size_t i = 0; i < n; ++i) {
    const EventType type = static_cast<EventType>(raw[i].meta & 0xFF);
    const uint32_t tid = static_cast<uint32_t>((raw[i].meta >> 8) & 0xFFFFFFu);
    const char* name = NameAt(static_cast<uint32_t>(raw[i].meta >> 32));
    size_t len = FormatEventLine(line, sizeof(line), raw[i].seq, raw[i].ts,
                                 type, tid, raw[i].q, name, raw[i].a,
                                 raw[i].b, raw[i].c);
    if (len + 1 < sizeof(line)) line[len++] = '\n';
    WriteAll(fd, line, len);
  }
  return n;
}

void FlightRecorder::InstallCrashHandler(const std::string& dir) {
  CrashState& crash = Crash();
  if (crash.installed.exchange(true)) return;
  std::string resolved = dir;
  if (resolved.empty()) {
    if (const char* env = std::getenv("IDF_EVENTS_DIR")) resolved = env;
  }
  if (resolved.empty()) resolved = ".";
  std::strncpy(crash.dir, resolved.c_str(), sizeof(crash.dir) - 1);
  // Force-construct the recorder now: Global() must not run its first-time
  // initialization inside the signal handler.
  (void)Global();
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = CrashSignalHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESETHAND;
  for (size_t i = 0; i < 5; ++i) {
    ::sigaction(kFatalSignals[i], &action, &crash.previous[i]);
  }
  IDF_LOG_DEBUG("flight recorder crash handler installed (dir: %s)",
                crash.dir);
}

}  // namespace idf::obs
