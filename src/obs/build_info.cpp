#include "obs/build_info.h"

#include <chrono>
#include <cstdio>

#ifndef IDF_GIT_SHA
#define IDF_GIT_SHA "unknown"
#endif
#ifndef IDF_BUILD_TYPE
#define IDF_BUILD_TYPE "unknown"
#endif
#ifndef IDF_SANITIZE_FLAGS
#define IDF_SANITIZE_FLAGS "none"
#endif

namespace idf::obs {

namespace {

std::chrono::steady_clock::time_point& Epoch() {
  static std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info{IDF_GIT_SHA, IDF_BUILD_TYPE, IDF_SANITIZE_FLAGS};
  (void)Epoch();
  return info;
}

double UptimeSeconds() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Epoch())
      .count();
}

std::string BuildInfoSummary() {
  const BuildInfo& info = GetBuildInfo();
  return std::string("sha=") + info.git_sha + " build=" + info.build_type +
         " san=" + info.sanitizer;
}

std::string BuildInfoJson() {
  const BuildInfo& info = GetBuildInfo();
  char uptime[32];
  std::snprintf(uptime, sizeof(uptime), "%.3f", UptimeSeconds());
  return std::string("{\"status\":\"ok\",\"git_sha\":\"") + info.git_sha +
         "\",\"build_type\":\"" + info.build_type + "\",\"sanitizer\":\"" +
         info.sanitizer + "\",\"uptime_seconds\":" + uptime + "}";
}

}  // namespace idf::obs
