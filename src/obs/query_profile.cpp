#include "obs/query_profile.h"

#include <algorithm>

#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"

namespace idf::obs {

namespace {

// Thread-local identity. The profile pointer is a cache of
// Registry.Get(t_query_id): resolved on scope install (or lazily for the
// unattributed bucket) so the recorder's feed never takes the registry
// mutex on the hot path.
thread_local uint64_t t_query_id = 0;
thread_local QueryProfile* t_profile = nullptr;

}  // namespace

void QueryProfile::OnTaskDone(uint32_t name_id, uint64_t wall_us,
                              bool failed) {
  task_wall_us.fetch_add(wall_us, std::memory_order_relaxed);
  if (failed) task_fails.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(stages_mu_);
  for (StageTotals& s : stages_) {
    if (s.name_id != name_id) continue;
    ++s.tasks;
    s.wall_us += wall_us;
    return;
  }
  stages_.push_back(StageTotals{name_id, 1, wall_us});
}

void QueryProfile::AddPinned(uint64_t bytes) {
  const uint64_t now =
      current_pinned_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  uint64_t peak = peak_pinned_bytes.load(std::memory_order_relaxed);
  while (now > peak && !peak_pinned_bytes.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
}

void QueryProfile::ReleasePinned(uint64_t bytes) {
  current_pinned_bytes.fetch_sub(bytes, std::memory_order_relaxed);
}

std::vector<QueryProfile::StageTotals> QueryProfile::Stages() const {
  std::lock_guard<std::mutex> lock(stages_mu_);
  return stages_;
}

QueryProfileRegistry& QueryProfileRegistry::Global() {
  static QueryProfileRegistry* registry = new QueryProfileRegistry();
  return *registry;
}

QueryProfile* QueryProfileRegistry::Get(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<QueryProfile>& slot = profiles_[id];
  if (slot == nullptr) slot = std::make_unique<QueryProfile>(id);
  return slot.get();
}

QueryProfile* QueryProfileRegistry::Find(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = profiles_.find(id);
  return it != profiles_.end() ? it->second.get() : nullptr;
}

std::vector<uint64_t> QueryProfileRegistry::Ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> ids;
  ids.reserve(profiles_.size());
  for (const auto& [id, profile] : profiles_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

namespace {

QueryProfileSnapshot SnapshotOf(const QueryProfile& p) {
  QueryProfileSnapshot out;
  out.id = p.id;
  out.tasks = p.tasks.load(std::memory_order_relaxed);
  out.task_fails = p.task_fails.load(std::memory_order_relaxed);
  out.task_wall_us = p.task_wall_us.load(std::memory_order_relaxed);
  out.steals = p.steals.load(std::memory_order_relaxed);
  out.resident_hits = p.resident_hits.load(std::memory_order_relaxed);
  out.resident_misses = p.resident_misses.load(std::memory_order_relaxed);
  out.bytes_spilled = p.bytes_spilled.load(std::memory_order_relaxed);
  out.evictions = p.evictions.load(std::memory_order_relaxed);
  out.bytes_reloaded = p.bytes_reloaded.load(std::memory_order_relaxed);
  out.bytes_prefetched = p.bytes_prefetched.load(std::memory_order_relaxed);
  out.prefetch_skips = p.prefetch_skips.load(std::memory_order_relaxed);
  out.shuffle_stall_us = p.shuffle_stall_us.load(std::memory_order_relaxed);
  out.shuffle_pushed_bytes =
      p.shuffle_pushed_bytes.load(std::memory_order_relaxed);
  out.admission_wait_us = p.admission_wait_us.load(std::memory_order_relaxed);
  out.current_pinned_bytes =
      p.current_pinned_bytes.load(std::memory_order_relaxed);
  out.peak_pinned_bytes = p.peak_pinned_bytes.load(std::memory_order_relaxed);
  FlightRecorder& fr = FlightRecorder::Global();
  for (const QueryProfile::StageTotals& s : p.Stages()) {
    QueryProfileSnapshot::Stage stage;
    stage.name = fr.NameForId(s.name_id);
    stage.tasks = s.tasks;
    stage.wall_us = s.wall_us;
    out.stages.push_back(std::move(stage));
  }
  return out;
}

}  // namespace

bool QueryProfileRegistry::Snapshot(uint64_t id,
                                    QueryProfileSnapshot* out) const {
  QueryProfile* profile = Find(id);
  if (profile == nullptr) return false;
  *out = SnapshotOf(*profile);
  return true;
}

std::vector<QueryProfileSnapshot> QueryProfileRegistry::SnapshotAll() const {
  std::vector<QueryProfileSnapshot> out;
  for (const uint64_t id : Ids()) {
    QueryProfile* profile = Find(id);
    if (profile != nullptr) out.push_back(SnapshotOf(*profile));
  }
  return out;
}

std::string QueryProfileJson(const QueryProfileSnapshot& snap) {
  std::string out = "{\"query_id\":" + std::to_string(snap.id);
  out += ",\"tasks\":" + std::to_string(snap.tasks);
  out += ",\"task_fails\":" + std::to_string(snap.task_fails);
  out += ",\"task_wall_us\":" + std::to_string(snap.task_wall_us);
  out += ",\"steals\":" + std::to_string(snap.steals);
  out += ",\"resident_hits\":" + std::to_string(snap.resident_hits);
  out += ",\"resident_misses\":" + std::to_string(snap.resident_misses);
  out += ",\"bytes_spilled\":" + std::to_string(snap.bytes_spilled);
  out += ",\"evictions\":" + std::to_string(snap.evictions);
  out += ",\"bytes_reloaded\":" + std::to_string(snap.bytes_reloaded);
  out += ",\"bytes_prefetched\":" + std::to_string(snap.bytes_prefetched);
  out += ",\"prefetch_skips\":" + std::to_string(snap.prefetch_skips);
  out += ",\"shuffle_stall_us\":" + std::to_string(snap.shuffle_stall_us);
  out += ",\"shuffle_pushed_bytes\":" +
         std::to_string(snap.shuffle_pushed_bytes);
  out += ",\"admission_wait_us\":" + std::to_string(snap.admission_wait_us);
  out += ",\"peak_pinned_bytes\":" + std::to_string(snap.peak_pinned_bytes);
  out += ",\"stages\":[";
  bool first = true;
  for (const QueryProfileSnapshot::Stage& s : snap.stages) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(s.name) + "\"";
    out += ",\"tasks\":" + std::to_string(s.tasks);
    out += ",\"wall_us\":" + std::to_string(s.wall_us) + "}";
  }
  return out + "]}";
}

uint64_t AllocateQueryId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

uint64_t CurrentQueryId() { return t_query_id; }

QueryProfile* CurrentQueryProfile() {
  if (t_profile == nullptr) {
    t_profile = QueryProfileRegistry::Global().Get(t_query_id);
  }
  return t_profile;
}

QueryScope::QueryScope(uint64_t id)
    : previous_id_(t_query_id), previous_profile_(t_profile) {
  t_query_id = id;
  // Resolve eagerly only on an id change: re-installing the ambient id
  // (nested scopes on the same lane) keeps the cached pointer.
  if (id != previous_id_ || t_profile == nullptr) {
    t_profile = QueryProfileRegistry::Global().Get(id);
  }
}

QueryScope::~QueryScope() {
  t_query_id = previous_id_;
  t_profile = previous_profile_;
}

}  // namespace idf::obs
