// Span-based tracing (observability layer, part 2 of 2).
//
// RAII spans record query -> stage -> task -> physical-operator nesting with
// parent/child links. Recording appends to a per-thread buffer (no shared
// lock on the hot path; each buffer's own mutex is uncontended except while
// an export drains it), and the whole trace exports as Chrome `trace_event`
// JSON — load it in chrome://tracing or https://ui.perfetto.dev — or as
// JSONL, one event per line, for scripting.
//
// Tracing is OFF by default: a disabled Span construction is one relaxed
// atomic load and no allocation, so instrumentation can stay in hot paths
// permanently. Enable with Tracer::Global().SetEnabled(true) or by exporting
// IDF_TRACE=1 before the first span (see TraceEnabledFromEnv in trace.cpp).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace idf::obs {

struct TraceEvent {
  std::string name;
  const char* category = "";    // "query", "stage", "task", "op", ...
  uint64_t start_us = 0;        // microseconds since the tracer epoch
  uint64_t dur_us = 0;
  uint32_t tid = 0;             // logical thread id (dense, 1-based)
  uint64_t span_id = 0;
  uint64_t parent_id = 0;       // 0 = root
  // Pre-rendered JSON values: {"rows", "1234"} or {"stage", "\"filter\""}.
  std::vector<std::pair<std::string, std::string>> args;
};

class Tracer {
 public:
  static Tracer& Global();

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since this tracer's construction.
  uint64_t NowMicros() const;

  /// Appends one finished event (Span does this from its destructor).
  void Record(TraceEvent event);

  /// Copies out every recorded event, across all threads, ordered by start.
  std::vector<TraceEvent> Snapshot() const;

  /// Drops all recorded events (buffers stay registered).
  void Clear();

  /// {"traceEvents":[{"ph":"X",...}, ...]} — complete events with
  /// microsecond timestamps, pid 1, one tid per recording thread.
  std::string ToChromeJson() const;

  /// One JSON object per line: {"name":...,"cat":...,"ts":...,"dur":...,
  /// "tid":...,"id":...,"parent":...,"args":{...}}.
  std::string ToJsonl() const;

  Status WriteChromeJson(const std::string& path) const;
  Status WriteJsonl(const std::string& path) const;

  /// Per-thread event buffer; public so the implementation's thread_local
  /// cache can name the type, but only the tracer hands instances out.
  struct ThreadBuffer {
    mutable std::mutex mutex;
    std::vector<TraceEvent> events;
    uint32_t tid = 0;
  };

 private:
  friend class Span;

  Tracer();
  ThreadBuffer& LocalBuffer();
  Status WriteString(const std::string& path, const std::string& body) const;

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex buffers_mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::atomic<uint32_t> next_tid_{1};
  std::atomic<uint64_t> next_span_id_{1};
};

/// RAII span. Construction captures the start time and links to the
/// innermost live span on this thread; destruction records the event.
/// Cheap no-op when the tracer is disabled at construction time.
class Span {
 public:
  Span(const char* category, std::string name);

  /// Explicit-parent constructor for cross-thread nesting: a task span
  /// created on a pool thread links under the stage span that lives on the
  /// driver's stack. The span still pushes onto this thread's stack, so
  /// spans opened inside it (ops, recovery) nest under it as usual.
  Span(const char* category, std::string name, uint64_t parent_id);

  ~Span() { End(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return active_; }

  /// This span's id (0 when the tracer was disabled at construction).
  /// Pass it to the explicit-parent constructor on another thread.
  uint64_t id() const { return active_ ? event_.span_id : 0; }

  /// Attach key/value arguments (shown in the trace viewer's detail pane).
  void AddArg(const char* key, const std::string& value);   // string value
  void AddArgInt(const char* key, uint64_t value);
  void AddArgNum(const char* key, double value);

  /// Records the span now instead of at destruction (idempotent).
  void End();

  /// Span id of the innermost live span on this thread (0 if none) — lets
  /// non-RAII events link themselves into the tree.
  static uint64_t CurrentId();

 private:
  bool active_ = false;
  TraceEvent event_;
};

}  // namespace idf::obs
