#include "obs/metrics_registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace idf::obs {

namespace {

int BucketOf(double v) {
  if (v <= 0.0) return 0;
  int exp = 0;
  std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
  const int bucket = exp - Histogram::kMinExp;
  return std::clamp(bucket, 0, Histogram::kNumBuckets - 1);
}

/// Upper bound of a bucket's value range (quantile estimates report this).
double BucketUpper(int bucket) {
  return std::ldexp(1.0, bucket + Histogram::kMinExp);
}

}  // namespace

double Histogram::BucketUpperBound(int bucket) { return BucketUpper(bucket); }

std::vector<std::pair<double, uint64_t>> Histogram::BucketCounts() const {
  std::vector<std::pair<double, uint64_t>> out;
  for (int b = 0; b < kNumBuckets; ++b) {
    const uint64_t n = buckets_[b].load(std::memory_order_relaxed);
    if (n > 0) out.emplace_back(BucketUpper(b), n);
  }
  return out;
}

namespace {

void AtomicMinMax(std::atomic<double>& slot, double v, bool want_min) {
  double cur = slot.load(std::memory_order_relaxed);
  while (want_min ? v < cur : v > cur) {
    if (slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) return;
  }
}

void AtomicAddDouble(std::atomic<double>& slot, double v) {
  double cur = slot.load(std::memory_order_relaxed);
  while (!slot.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::Observe(double v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(sum_, v);
  AtomicMinMax(min_, v, /*want_min=*/true);
  AtomicMinMax(max_, v, /*want_min=*/false);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::Quantile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n - 1));
  uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen > rank) return std::min(BucketUpper(b), max());
  }
  return max();
}

std::string TaggedName(const std::string& base,
                       std::initializer_list<MetricTag> tags) {
  if (tags.size() == 0) return base;
  std::vector<MetricTag> sorted(tags);
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return std::string_view(a.first) < std::string_view(b.first);
  });
  std::string out = base;
  out += '{';
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i) out += ',';
    out += sorted[i].first;
    out += '=';
    out += sorted[i].second;
  }
  out += '}';
  return out;
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();
  return *registry;
}

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = metrics_[name];
  if (entry.counter == nullptr) {
    IDF_CHECK_MSG(entry.gauge == nullptr && entry.histogram == nullptr,
                  "metric registered with a different kind");
    entry.kind = MetricKind::kCounter;
    entry.counter = std::make_unique<Counter>();
  }
  return *entry.counter;
}

Gauge& Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = metrics_[name];
  if (entry.gauge == nullptr) {
    IDF_CHECK_MSG(entry.counter == nullptr && entry.histogram == nullptr,
                  "metric registered with a different kind");
    entry.kind = MetricKind::kGauge;
    entry.gauge = std::make_unique<Gauge>();
  }
  return *entry.gauge;
}

Histogram& Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = metrics_[name];
  if (entry.histogram == nullptr) {
    IDF_CHECK_MSG(entry.counter == nullptr && entry.gauge == nullptr,
                  "metric registered with a different kind");
    entry.kind = MetricKind::kHistogram;
    entry.histogram = std::make_unique<Histogram>();
  }
  return *entry.histogram;
}

std::vector<MetricSnapshot> Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) {
    MetricSnapshot snap;
    snap.name = name;
    snap.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        snap.counter_value = entry.counter->value();
        break;
      case MetricKind::kGauge:
        snap.gauge_value = entry.gauge->value();
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *entry.histogram;
        snap.count = h.count();
        snap.sum = h.sum();
        snap.mean = h.mean();
        snap.min = h.min();
        snap.max = h.max();
        snap.p50 = h.Quantile(0.50);
        snap.p95 = h.Quantile(0.95);
        snap.p99 = h.Quantile(0.99);
        snap.buckets = h.BucketCounts();
        break;
      }
    }
    out.push_back(std::move(snap));
  }
  return out;
}

namespace {

std::string NumberJson(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string Registry::ToJson() const {
  const std::vector<MetricSnapshot> snaps = Snapshot();
  std::string counters, gauges, histograms;
  for (const MetricSnapshot& s : snaps) {
    switch (s.kind) {
      case MetricKind::kCounter:
        if (!counters.empty()) counters += ",";
        counters += "\"" + JsonEscape(s.name) +
                    "\":" + std::to_string(s.counter_value);
        break;
      case MetricKind::kGauge:
        if (!gauges.empty()) gauges += ",";
        gauges += "\"" + JsonEscape(s.name) + "\":" + NumberJson(s.gauge_value);
        break;
      case MetricKind::kHistogram:
        if (!histograms.empty()) histograms += ",";
        histograms += "\"" + JsonEscape(s.name) + "\":{\"count\":" +
                      std::to_string(s.count) + ",\"sum\":" + NumberJson(s.sum) +
                      ",\"mean\":" + NumberJson(s.mean) +
                      ",\"min\":" + NumberJson(s.min) +
                      ",\"max\":" + NumberJson(s.max) +
                      ",\"p50\":" + NumberJson(s.p50) +
                      ",\"p95\":" + NumberJson(s.p95) +
                      ",\"p99\":" + NumberJson(s.p99) + ",\"buckets\":[";
        for (size_t i = 0; i < s.buckets.size(); ++i) {
          if (i) histograms += ",";
          histograms += "[" + NumberJson(s.buckets[i].first) + "," +
                        std::to_string(s.buckets[i].second) + "]";
        }
        histograms += "]}";
        break;
    }
  }
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges +
         "},\"histograms\":{" + histograms + "}}";
}

Status Registry::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Unavailable("cannot open metrics file '" + path + "'");
  }
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::Unavailable("short write to metrics file '" + path + "'");
  }
  return Status::OK();
}

void Registry::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  metrics_.clear();
}

// ---- snapshot diffing (per-phase bench reporting) ---------------------------

double BucketQuantile(const std::vector<std::pair<double, uint64_t>>& buckets,
                      double q) {
  uint64_t total = 0;
  for (const auto& [bound, n] : buckets) total += n;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1));
  uint64_t seen = 0;
  for (const auto& [bound, n] : buckets) {
    seen += n;
    if (seen > rank) return bound;
  }
  return buckets.back().first;
}

namespace {

/// Rebuilds a histogram snapshot's derived stats from diffed buckets.
/// Exact min/max are not diffable (the extremum may predate the baseline),
/// so they degrade to bucket-resolution bounds of the delta distribution.
void FillHistogramStats(MetricSnapshot& s) {
  s.mean = s.count == 0 ? 0.0 : s.sum / static_cast<double>(s.count);
  s.min = s.buckets.empty() ? 0.0 : s.buckets.front().first / 2.0;
  s.max = s.buckets.empty() ? 0.0 : s.buckets.back().first;
  s.p50 = BucketQuantile(s.buckets, 0.50);
  s.p95 = BucketQuantile(s.buckets, 0.95);
  s.p99 = BucketQuantile(s.buckets, 0.99);
}

}  // namespace

std::vector<MetricSnapshot> DiffSnapshots(
    const std::vector<MetricSnapshot>& before,
    const std::vector<MetricSnapshot>& after) {
  std::map<std::string, const MetricSnapshot*> base;
  for (const MetricSnapshot& s : before) base[s.name] = &s;
  std::vector<MetricSnapshot> out;
  out.reserve(after.size());
  for (const MetricSnapshot& s : after) {
    MetricSnapshot d = s;
    auto it = base.find(s.name);
    const MetricSnapshot* b =
        (it != base.end() && it->second->kind == s.kind) ? it->second : nullptr;
    switch (s.kind) {
      case MetricKind::kCounter:
        if (b != nullptr) d.counter_value -= std::min(b->counter_value,
                                                      d.counter_value);
        break;
      case MetricKind::kGauge:
        break;  // a level, not a total: report where it is now
      case MetricKind::kHistogram: {
        if (b != nullptr) {
          d.count -= std::min(b->count, d.count);
          d.sum -= b->sum;
          std::map<double, uint64_t> merged(d.buckets.begin(), d.buckets.end());
          for (const auto& [bound, n] : b->buckets) {
            auto m = merged.find(bound);
            if (m != merged.end()) m->second -= std::min(n, m->second);
          }
          d.buckets.clear();
          for (const auto& [bound, n] : merged) {
            if (n > 0) d.buckets.emplace_back(bound, n);
          }
        }
        FillHistogramStats(d);
        break;
      }
    }
    out.push_back(std::move(d));
  }
  return out;
}

RegistryDelta::RegistryDelta(const Registry* registry)
    : registry_(registry != nullptr ? registry : &Registry::Global()),
      before_(registry_->Snapshot()) {}

void RegistryDelta::Reset() { before_ = registry_->Snapshot(); }

std::vector<MetricSnapshot> RegistryDelta::Deltas() const {
  return DiffSnapshots(before_, registry_->Snapshot());
}

uint64_t RegistryDelta::Counter(const std::string& name) const {
  uint64_t baseline = 0;
  for (const MetricSnapshot& s : before_) {
    if (s.name == name && s.kind == MetricKind::kCounter) {
      baseline = s.counter_value;
      break;
    }
  }
  const std::vector<MetricSnapshot> now = registry_->Snapshot();
  for (const MetricSnapshot& s : now) {
    if (s.name == name && s.kind == MetricKind::kCounter) {
      return s.counter_value - std::min(baseline, s.counter_value);
    }
  }
  return 0;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace idf::obs
