// Engine-wide metrics registry (observability layer, part 1 of 2 — spans
// live in obs/trace.h).
//
// Named, typed counters / gauges / histograms with cheap atomic updates.
// Hot paths obtain a metric reference once (a function-local static or a
// cached member) and then pay one relaxed atomic RMW per update — the
// registry map lookup happens only at first use. Metrics can be tagged
// (executor / stage / operator) via TaggedName(), which folds the tags into
// the metric name: `engine.stage.seconds{stage=filter}`.
//
// A snapshot of every metric can be taken at any point and exported as JSON
// (benches write it through the --metrics-out flag in bench/bench_util.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace idf::obs {

/// Monotonically increasing 64-bit counter.
class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written-wins double value with atomic add.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double v) {
    // CAS loop instead of atomic<double>::fetch_add for portability.
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Lock-free histogram over base-2 exponential buckets.
///
/// Observations are doubles >= 0 (seconds, bytes, rows — unit is up to the
/// metric name). Bucket i covers values with binary exponent i + kMinExp,
/// giving ~2x resolution from 2^-40 (~1e-12) to 2^47 (~1e14) — wide enough
/// for nanoseconds-as-seconds up to terabytes-as-bytes. Quantiles are
/// estimated at bucket resolution (upper bound of the bucket).
class Histogram {
 public:
  static constexpr int kMinExp = -40;
  static constexpr int kNumBuckets = 88;

  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  double min() const;
  double max() const;

  /// Bucket-resolution quantile estimate, q in [0, 1].
  double Quantile(double q) const;

  /// Inclusive upper bound of bucket `i`'s value range (2^(i + kMinExp)).
  /// Exposed so exporters and diff tooling share the base-2 bucket math
  /// instead of reimplementing it.
  static double BucketUpperBound(int bucket);

  /// Non-cumulative per-bucket counts as (upper_bound, count) pairs, only
  /// buckets with count > 0, ascending by bound. The Prometheus exporter
  /// accumulates these into cumulative `le` buckets.
  std::vector<std::pair<double, uint64_t>> BucketCounts() const;

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // Exact min/max, maintained with CAS loops; infinities until first Observe.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// Point-in-time value of one metric (see Registry::Snapshot).
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  uint64_t counter_value = 0;   // kCounter
  double gauge_value = 0;       // kGauge
  uint64_t count = 0;           // kHistogram
  double sum = 0, mean = 0, min = 0, max = 0, p50 = 0, p95 = 0, p99 = 0;
  /// kHistogram: non-cumulative (upper_bound, count) pairs, non-zero
  /// buckets only, ascending (see Histogram::BucketCounts).
  std::vector<std::pair<double, uint64_t>> buckets;
};

/// Bucket-resolution quantile over a (upper_bound, count) bucket vector —
/// the same estimate Histogram::Quantile computes from its live buckets,
/// usable on diffed snapshots.
double BucketQuantile(const std::vector<std::pair<double, uint64_t>>& buckets,
                      double q);

/// Per-metric difference `after - before` of two Registry snapshots, for
/// per-phase reporting (benches): counters and histogram count/sum/buckets
/// subtract (quantiles/mean/min/max recomputed from the bucket deltas);
/// gauges are levels, not totals, so the delta keeps the `after` value.
/// Metrics absent from `before` count as zero there; metrics absent from
/// `after` are dropped. Output is sorted by name.
std::vector<MetricSnapshot> DiffSnapshots(
    const std::vector<MetricSnapshot>& before,
    const std::vector<MetricSnapshot>& after);

class Registry;

/// Phase-scoped metric deltas for benches: capture a baseline at
/// construction, then ask what changed.
///
///   obs::RegistryDelta phase;            // snapshot "before"
///   RunWorkload();
///   uint64_t evictions = phase.Counter("mem.evictions");
///   std::vector<MetricSnapshot> all = phase.Deltas();
///
/// Lets figure benches report per-phase numbers (one budget step, one
/// thread-count rung) instead of process-lifetime totals.
class RegistryDelta {
 public:
  /// Captures the baseline snapshot now. Defaults to the global registry.
  explicit RegistryDelta(const Registry* registry = nullptr);

  /// Re-captures the baseline (start of the next phase).
  void Reset();

  /// All metric deltas since the baseline (see DiffSnapshots).
  std::vector<MetricSnapshot> Deltas() const;

  /// Delta of one counter since the baseline (0 if never registered).
  uint64_t Counter(const std::string& name) const;

 private:
  const Registry* registry_;
  std::vector<MetricSnapshot> before_;
};

/// One tag dimension; TaggedName folds a list of these into a metric name.
using MetricTag = std::pair<const char*, std::string>;

/// "engine.task.seconds" + {{"stage","filter"},{"executor","3"}} ->
/// "engine.task.seconds{executor=3,stage=filter}" (tags sorted by key so
/// the same tag set always names the same metric).
std::string TaggedName(const std::string& base,
                       std::initializer_list<MetricTag> tags);

class Registry {
 public:
  /// The process-wide registry. Everything in the engine records here;
  /// tests may construct private registries.
  static Registry& Global();

  /// Get-or-create. References stay valid for the registry's lifetime, so
  /// hot paths cache them (e.g. in a function-local static). Requesting an
  /// existing name with a different kind is a programming error (checked).
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// All metrics, sorted by name.
  std::vector<MetricSnapshot> Snapshot() const;

  /// The snapshot rendered as a JSON object:
  ///   {"counters": {name: value, ...},
  ///    "gauges": {name: value, ...},
  ///    "histograms": {name: {"count":..,"sum":..,"mean":..,"min":..,
  ///                          "max":..,"p50":..,"p95":..,"p99":..,
  ///                          "buckets":[[le,count],...]}, ...}}
  /// Histogram "buckets" are non-cumulative counts keyed by the bucket's
  /// inclusive upper bound, non-zero buckets only — external tools get the
  /// explicit base-2 boundaries instead of reimplementing the bucket math.
  std::string ToJson() const;

  Status WriteJson(const std::string& path) const;

  /// Drops every registered metric (tests; references become invalid).
  void Clear();

 private:
  struct Entry {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> metrics_;
};

/// JSON string escaping shared by the metrics/trace/log JSON emitters.
std::string JsonEscape(const std::string& s);

}  // namespace idf::obs
