// Embedded introspection server (observability v2, part 2): a dependency-
// free HTTP/1.0 endpoint over plain POSIX sockets for watching a live
// process — you cannot operate a budgeted cache you cannot see.
//
// Endpoints:
//   /metrics      Prometheus text exposition (version 0.0.4) of the global
//                 metrics registry: counters, gauges, and histograms with
//                 explicit cumulative `le` buckets from the registry's
//                 base-2 bucket boundaries. Tagged metric names
//                 (`mem.evictions{executor=3}`) render as proper labels.
//   /events?n=N   The newest N flight-recorder events (default 512) as
//                 JSONL (application/x-ndjson).
//   /healthz      Liveness probe returning the build identity as JSON:
//                 {"status":"ok","git_sha":..,"build_type":..,
//                  "sanitizer":..,"uptime_seconds":..}.
//   <registered>  Arbitrary JSON sources added via AddJsonHandler (exact
//                 path) or AddPrefixHandler (path prefix) — the engine
//                 registers /residency (the memory governor's live
//                 ResidencyMap) and the query service /queries and
//                 /queries/<id> this way, keeping obs free of upward deps.
//
// Opt-in and intentionally minimal: one background thread, one request at
// a time, Connection: close. Enabled by exporting IDF_OBS_PORT=<port>
// before the first Cluster is constructed (StartFromEnv), or directly via
// Start(port); port 0 binds an ephemeral port (tests). This is a debugging
// and scrape endpoint, not a production web server: bind is on 127.0.0.1.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace idf::obs {

struct MetricSnapshot;

/// Renders registry snapshots as Prometheus text exposition format 0.0.4.
/// Metric names sanitize to [a-zA-Z0-9_:]; `{k=v,...}` tag suffixes become
/// label sets; histograms emit cumulative `name_bucket{le="..."}` series
/// plus `name_sum` / `name_count`. Exposed for tests.
std::string PrometheusText(const std::vector<MetricSnapshot>& snapshot);

class IntrospectionServer {
 public:
  /// The process-wide server (leaky singleton, like the registry).
  static IntrospectionServer& Global();

  /// Binds 127.0.0.1:<port> (0 = ephemeral) and starts the serving thread.
  /// Returns the bound port. Unavailable if already running or bind fails.
  Result<uint16_t> Start(uint16_t port);

  /// Starts the global server when IDF_OBS_PORT is set to a valid port.
  /// Safe to call many times (e.g. every Cluster construction): only the
  /// first successful start binds. Logs a warning on a bad port value.
  static void StartFromEnv();

  /// Stops the serving thread and closes the socket. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint16_t port() const { return port_; }

  /// Registers (or replaces) a JSON source at `path` (must start with '/').
  /// The handler runs on the serving thread; it must not block for long and
  /// must return a complete JSON document.
  void AddJsonHandler(const std::string& path, std::function<std::string()> fn);

  /// Registers (or replaces) a JSON source for every path starting with
  /// `prefix` (e.g. "/queries/" serves /queries/<id>). The handler receives
  /// the full request path; exact AddJsonHandler routes win over prefixes,
  /// and the longest matching prefix wins among prefixes. Return "" to have
  /// the server answer 404 (unknown id).
  void AddPrefixHandler(const std::string& prefix,
                        std::function<std::string(const std::string&)> fn);

  IntrospectionServer(const IntrospectionServer&) = delete;
  IntrospectionServer& operator=(const IntrospectionServer&) = delete;

 private:
  IntrospectionServer() = default;
  ~IntrospectionServer();

  void ServeLoop();
  void HandleConnection(int fd);

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
  std::mutex handlers_mutex_;
  std::map<std::string, std::function<std::string()>> handlers_;
  std::map<std::string, std::function<std::string(const std::string&)>>
      prefix_handlers_;
  std::mutex lifecycle_mutex_;  // serializes Start/Stop
};

}  // namespace idf::obs
