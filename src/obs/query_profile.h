// Per-query resource attribution (observability v3): a thread-local query
// identity plus a process-wide registry of per-query cost profiles.
//
// The flight recorder answers "what did the machinery just do"; the metrics
// registry answers "how much, in total". Neither answers the question a
// shared-budget serving process actually gets asked: *which query* paid for
// those 180 MiB of spills. This layer closes that gap.
//
// Identity: QueryScope installs a query id on the current thread (RAII,
// nestable, save/restore). The query service installs it around each
// driver's work; the engine re-installs it on every scheduler worker lane,
// pipelined shuffle lane, and the governor's background prefetcher (the
// prefetch queue carries the id of the query that enqueued the request).
// Everything recorded while a scope is active — flight-recorder events and
// the profile feeds below — is attributed to that query. Id 0 is the
// "unattributed" bucket: work done outside any query (table builds, bench
// setup) lands there, so totals still conserve.
//
// Attribution rule for governor traffic: the query whose allocation or
// fault *triggered* an eviction/spill/reload is charged, not the query
// whose data was evicted. That is the actionable number — it is the
// pressure a query exerts on the shared budget.
//
// Accumulation: FlightRecorder::Record() feeds the current thread's profile
// as a side effect of recording (steals, residency, spill/reload bytes,
// shuffle stalls — every fed field has a 1:1 co-located metric increment,
// which is what the conservation gate in tests/query_profile_test.cpp
// checks). Task counts are fed directly by the engine next to the
// `engine.tasks` counter (the one site where events and the metric
// intentionally disagree: a pre-body cancellation records task_fail without
// counting a task). Disabling the recorder (IDF_FLIGHT_RECORDER=0) disables
// event-fed attribution too — that is the documented A/B lever.
//
// Everything here is allocation-free and lock-free on the hot path: profile
// fields are relaxed atomics, scope install is two thread-local writes plus
// a per-thread (id -> profile) cache that only touches the registry mutex
// on a cache miss.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace idf::obs {

/// Accumulating totals for one query. All counters are relaxed atomics —
/// many worker threads feed one profile concurrently. Leaky-owned by the
/// registry; pointers remain valid for the process lifetime.
struct QueryProfile {
  explicit QueryProfile(uint64_t query_id) : id(query_id) {}

  const uint64_t id;

  // Fed directly by the engine (co-located with engine.tasks).
  std::atomic<uint64_t> tasks{0};

  // Event-fed (FlightRecorder::Record side effect).
  std::atomic<uint64_t> task_fails{0};
  std::atomic<uint64_t> task_wall_us{0};      // summed per-task body wall
  std::atomic<uint64_t> steals{0};
  std::atomic<uint64_t> resident_hits{0};
  std::atomic<uint64_t> resident_misses{0};
  std::atomic<uint64_t> bytes_spilled{0};     // spill writes this query forced
  std::atomic<uint64_t> evictions{0};         // evictions this query forced
  std::atomic<uint64_t> bytes_reloaded{0};    // demand fault-ins
  std::atomic<uint64_t> bytes_prefetched{0};  // prefetcher reloads it enqueued
  std::atomic<uint64_t> prefetch_skips{0};
  std::atomic<uint64_t> shuffle_stall_us{0};
  std::atomic<uint64_t> shuffle_pushed_bytes{0};

  // Fed directly by the query service / governor access scopes.
  std::atomic<uint64_t> admission_wait_us{0};
  std::atomic<uint64_t> current_pinned_bytes{0};
  std::atomic<uint64_t> peak_pinned_bytes{0};  // CAS max of current

  /// Per-stage wall time and task counts (event-fed on task finish/fail).
  /// `name_id` is the flight recorder's interned stage-name id.
  struct StageTotals {
    uint32_t name_id = 0;
    uint64_t tasks = 0;
    uint64_t wall_us = 0;
  };

  /// Folds one finished/failed task into the totals (called from the
  /// recorder's feed; takes the small per-profile stage mutex).
  void OnTaskDone(uint32_t name_id, uint64_t wall_us, bool failed);

  /// Raises current_pinned_bytes and ratchets the peak.
  void AddPinned(uint64_t bytes);
  void ReleasePinned(uint64_t bytes);

  /// Copies the stage table (short; guarded by stages_mu_).
  std::vector<StageTotals> Stages() const;

 private:
  mutable std::mutex stages_mu_;
  std::vector<StageTotals> stages_;
};

/// Non-atomic copy of one profile at a point in time.
struct QueryProfileSnapshot {
  uint64_t id = 0;
  uint64_t tasks = 0;
  uint64_t task_fails = 0;
  uint64_t task_wall_us = 0;
  uint64_t steals = 0;
  uint64_t resident_hits = 0;
  uint64_t resident_misses = 0;
  uint64_t bytes_spilled = 0;
  uint64_t evictions = 0;
  uint64_t bytes_reloaded = 0;
  uint64_t bytes_prefetched = 0;
  uint64_t prefetch_skips = 0;
  uint64_t shuffle_stall_us = 0;
  uint64_t shuffle_pushed_bytes = 0;
  uint64_t admission_wait_us = 0;
  uint64_t current_pinned_bytes = 0;
  uint64_t peak_pinned_bytes = 0;
  struct Stage {
    std::string name;
    uint64_t tasks = 0;
    uint64_t wall_us = 0;
  };
  std::vector<Stage> stages;
};

/// Process-wide id -> profile map. Get() is get-or-create; profiles are
/// never removed (a finished query's profile stays inspectable, mirroring
/// the service's finished-queries tail).
class QueryProfileRegistry {
 public:
  static QueryProfileRegistry& Global();

  /// The profile for `id`, created on first use. Never null.
  QueryProfile* Get(uint64_t id);

  /// The profile for `id`, or nullptr when none exists yet.
  QueryProfile* Find(uint64_t id) const;

  /// All known ids (including 0 once anything unattributed was recorded).
  std::vector<uint64_t> Ids() const;

  /// Snapshot of one profile; false when the id is unknown.
  bool Snapshot(uint64_t id, QueryProfileSnapshot* out) const;

  /// Snapshot of every profile, sorted by id.
  std::vector<QueryProfileSnapshot> SnapshotAll() const;

  QueryProfileRegistry(const QueryProfileRegistry&) = delete;
  QueryProfileRegistry& operator=(const QueryProfileRegistry&) = delete;

 private:
  QueryProfileRegistry() = default;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::unique_ptr<QueryProfile>> profiles_;
};

/// Renders one snapshot as a JSON object (the schema served by
/// /queries/<id> and embedded in BENCH_serve.json; docs/OBSERVABILITY.md).
std::string QueryProfileJson(const QueryProfileSnapshot& snap);

/// Allocates a process-unique query id (>= 1). All query-id producers (every
/// QueryService, EXPLAIN ANALYZE's ephemeral scopes) share this sequence so
/// the registry never merges two different queries.
uint64_t AllocateQueryId();

/// The query id attributed to work on this thread (0 = unattributed).
uint64_t CurrentQueryId();

/// The current thread's profile — the one for CurrentQueryId(), resolved
/// lazily (bucket 0 included). Never null. Intended for co-located direct
/// feeds (engine.tasks); event-shaped costs flow through the recorder.
QueryProfile* CurrentQueryProfile();

/// RAII install of a query identity on the current thread. Nestable;
/// restores the previous id (and cached profile) on destruction.
class QueryScope {
 public:
  explicit QueryScope(uint64_t id);
  ~QueryScope();
  QueryScope(const QueryScope&) = delete;
  QueryScope& operator=(const QueryScope&) = delete;

 private:
  uint64_t previous_id_;
  QueryProfile* previous_profile_;
};

}  // namespace idf::obs
