// QueryService: concurrent multi-session query execution over one engine
// (docs/SERVER.md).
//
// The paper's Indexed DataFrame lives inside Spark, where many jobs share
// one executor fleet and one memory budget. This subsystem reproduces that
// regime: N client threads Submit() work against a shared Session, a small
// pool of query drivers executes it through the existing Cluster, and
// admission control keeps the aggregate declared working set inside the
// MemoryGovernor's budget.
//
// Admission model:
//  - Every query carries a byte *reservation* (declared working set;
//    QueryOptions::reservation_bytes, default from the service config).
//    Reservations are admission bookkeeping against the governor's budget —
//    the governor's eviction machinery remains the byte-level enforcer.
//  - Submit() enqueues into a FIFO-with-priority queue (higher priority
//    first, FIFO within a priority). A full queue rejects immediately with
//    kResourceExhausted regardless of policy.
//  - A query driver pops the next entry and calls
//    MemoryGovernor::TryReserve. On failure the policy decides:
//    kQueue (default) — the driver holds the query and waits for a running
//    query to release its reservation (other drivers keep serving, so one
//    over-sized query does not idle the whole pool); kReject — the query
//    fails immediately with kResourceExhausted.
//  - Completion (any path) releases the reservation and wakes waiters.
//
// Deadlines & cancellation: each query owns a QueryControl (engine/
// cancel.h) installed around its execution; Cluster::RunStage and
// RunPipelinedStages check it at every task boundary, so Cancel() or an
// expired deadline unwinds the query with kCancelled / kDeadlineExceeded
// through the engine's first-error-wins machinery — pins, reservations, and
// streaming shuffles all release through their normal error paths, and
// shared state (catalog, versions, block manager) is never poisoned.
//
// Knobs (environment, read by QueryServiceConfig::FromEnv):
//   IDF_SERVE_WORKERS      query driver threads            (default 4)
//   IDF_ADMIT_QUEUE_DEPTH  max queued queries              (default 64)
//   IDF_ADMIT_RESERVATION  default per-query reservation   (default 16m)
//   IDF_ADMIT_POLICY       queue | reject                  (default queue)
//   IDF_SLOW_QUERY_MS      slow-query log threshold        (default off)
//
// Attribution: every query gets a process-unique id (obs::AllocateQueryId)
// carried by its QueryControl; the engine re-installs it on pool workers so
// per-query profiles (obs/query_profile.h) charge spills, reloads, stalls,
// and task time to the triggering query. /queries rows embed a profile
// summary; /queries/<id> serves the record, the full profile, and the
// query's slice of the flight-recorder ring; queries running longer than
// IDF_SLOW_QUERY_MS emit a structured `slow_query {...}` WARN line.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "engine/cancel.h"
#include "sql/session.h"

namespace idf::server {

/// What to do with a query whose reservation does not currently fit.
enum class AdmitPolicy {
  kQueue,   // hold it until a running query releases budget
  kReject,  // fail it immediately with kResourceExhausted
};

struct QueryServiceConfig {
  uint32_t workers = 4;             // query driver threads
  uint32_t max_queue = 64;          // queued (not yet running) queries
  uint64_t default_reservation_bytes = 16ull << 20;
  AdmitPolicy policy = AdmitPolicy::kQueue;

  /// Applies the IDF_SERVE_WORKERS / IDF_ADMIT_* environment overrides on
  /// top of the defaults above.
  static QueryServiceConfig FromEnv();
};

struct QueryOptions {
  /// Declared working-set bytes; 0 = the service default.
  uint64_t reservation_bytes = 0;
  /// Higher runs first among queued queries; FIFO within equal priority.
  int32_t priority = 0;
  /// Wall-clock budget from submission; 0 = none. Expiry fails the query
  /// with kDeadlineExceeded whether it is still queued or already running.
  double deadline_seconds = 0;
  /// Optional label for events, /queries, and logs.
  std::string label;
};

enum class QueryState {
  kQueued,     // accepted, waiting for a driver + reservation
  kRunning,    // executing on a driver thread
  kDone,       // finished OK; result available
  kFailed,     // finished with an error status
  kCancelled,  // cancelled via QueryHandle::Cancel
  kExpired,    // deadline passed before completion
  kRejected,   // admission refused (queue full / reservation policy)
};

/// "queued", "running", "done", ...
const char* QueryStateName(QueryState state);

/// Execution context handed to the query's work function on the driver
/// thread. `control` is already installed thread-locally (the engine checks
/// it at task boundaries); long driver-side loops may poll it directly.
struct QueryContext {
  uint64_t query_id = 0;
  QueryControl& control;
  Session& session;
  /// Deliver the query's result here (what QueryHandle::TakeResult hands
  /// back to the client).
  CollectedTable result;
};

/// The query body, run on a driver thread. Returning non-OK fails the
/// query with that status.
using QueryWork = std::function<Status(QueryContext&)>;

namespace detail {
struct QueryRecord;
}  // namespace detail

/// Client-side handle to one submitted query. Cheap to copy (shared state);
/// valid() is false only for a default-constructed handle.
class QueryHandle {
 public:
  QueryHandle() = default;

  bool valid() const { return rec_ != nullptr; }
  uint64_t id() const;

  /// Blocks until the query reaches a terminal state; returns its final
  /// status (OK only for kDone).
  Status Wait();

  /// Non-blocking: true once the query reached a terminal state.
  bool Done() const;

  QueryState state() const;

  /// Final status; OK while not yet terminal.
  Status status() const;

  /// Requests cooperative cancellation. A queued query resolves to
  /// kCancelled when a driver reaches it; a running query unwinds at its
  /// next task boundary. Idempotent; no effect on terminal queries.
  void Cancel();

  /// Moves the result out after a successful Wait(). Fails with the
  /// query's status when it did not finish OK.
  Result<CollectedTable> TakeResult();

  /// Engine stages this query completed so far (live progress).
  uint32_t stages_completed() const;

 private:
  friend class QueryService;
  explicit QueryHandle(std::shared_ptr<detail::QueryRecord> rec)
      : rec_(std::move(rec)) {}

  std::shared_ptr<detail::QueryRecord> rec_;
};

class QueryService {
 public:
  /// The service drives queries against `session`, which must outlive it.
  /// Registers the /queries introspection source on first construction.
  explicit QueryService(Session& session,
                        QueryServiceConfig config = QueryServiceConfig::FromEnv());
  ~QueryService();  // Shutdown(/*cancel_pending=*/true)

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Enqueues `work`. Returns a handle in state kQueued, or one already in
  /// kRejected when the admission queue is full (its status() carries the
  /// kResourceExhausted reason).
  QueryHandle Submit(QueryWork work, QueryOptions options = {});

  /// Convenience: submit a SQL text; the result of Collect() lands in the
  /// handle (TakeResult).
  QueryHandle SubmitSql(const std::string& sql, QueryOptions options = {});

  /// Stops accepting work and joins the drivers. cancel_pending=false
  /// drains the queue first; true cancels queued queries (kCancelled) and
  /// cooperatively cancels running ones. Idempotent.
  void Shutdown(bool cancel_pending);

  const QueryServiceConfig& config() const { return config_; }
  Session& session() { return session_; }

  /// Queries currently queued or running (snapshot).
  size_t ActiveQueries() const;

  /// JSON document served at /queries: every live query plus a bounded
  /// tail of finished ones (age, state, reserved bytes, stages completed,
  /// and a summary of the query's resource profile — obs/query_profile.h).
  std::string QueriesJson() const;

  /// One query's /queries row by id, or "" when this service never saw it
  /// (or it aged out of the finished tail). Backs /queries/<id>.
  std::string QueryJson(uint64_t id) const;

 private:
  void WorkerLoop();
  /// Pops the best queued entry (priority, then FIFO). Caller holds mu_.
  std::shared_ptr<detail::QueryRecord> PopLocked();
  /// Runs one admitted record on the calling driver thread.
  void RunQuery(const std::shared_ptr<detail::QueryRecord>& rec);
  /// Transitions to a terminal state, releases the reservation, fires
  /// events/metrics, and wakes waiters.
  void Finish(const std::shared_ptr<detail::QueryRecord>& rec,
              QueryState state, Status status);

  Session& session_;
  QueryServiceConfig config_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;       // queue became non-empty / stop
  std::condition_variable admission_cv_;  // a reservation was released
  std::deque<std::shared_ptr<detail::QueryRecord>> queue_;
  std::vector<std::shared_ptr<detail::QueryRecord>> live_;     // queued+running
  std::deque<std::shared_ptr<detail::QueryRecord>> finished_;  // bounded tail
  bool stop_ = false;
  bool cancel_pending_ = false;
  bool shut_down_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace idf::server
