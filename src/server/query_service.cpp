#include "server/query_service.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/logging.h"
#include "mem/governor.h"
#include "obs/flight_recorder.h"
#include "obs/introspect.h"
#include "obs/metrics_registry.h"
#include "obs/query_profile.h"
#include "testing/chaos.h"

namespace idf::server {

namespace {

/// server.* metric handles, resolved once (see obs/metrics_registry.h).
struct ServerMetrics {
  obs::Gauge& queue_depth =
      obs::Registry::Global().GetGauge("server.queue_depth");
  obs::Gauge& running = obs::Registry::Global().GetGauge("server.running");
  obs::Counter& submitted =
      obs::Registry::Global().GetCounter("server.submitted");
  obs::Counter& admitted = obs::Registry::Global().GetCounter("server.admitted");
  obs::Counter& rejected = obs::Registry::Global().GetCounter("server.rejected");
  obs::Counter& cancelled =
      obs::Registry::Global().GetCounter("server.cancelled");
  obs::Counter& expired =
      obs::Registry::Global().GetCounter("server.deadline_expired");
  obs::Histogram& query_seconds =
      obs::Registry::Global().GetHistogram("server.query.seconds");
  obs::Histogram& queued_seconds =
      obs::Registry::Global().GetHistogram("server.queued.seconds");

  static ServerMetrics& Get() {
    static ServerMetrics* metrics = new ServerMetrics();
    return *metrics;
  }
};

bool Terminal(QueryState s) {
  return s != QueryState::kQueued && s != QueryState::kRunning;
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    } else {
      out += ' ';
    }
  }
  return out;
}

}  // namespace

namespace detail {

/// Shared state of one query, owned jointly by the service, the client's
/// QueryHandle, and (while running) a driver thread. `mu` guards the state
/// machine; the service's mu_ guards queue membership. Lock ordering:
/// service mu_ may nest rec->mu inside it (QueriesJson), never the reverse
/// — Finish drops rec->mu before touching the service queues.
struct QueryRecord {
  uint64_t id = 0;
  std::string label;
  uint32_t name_id = 0;  // interned label for flight-recorder events
  int32_t priority = 0;
  uint64_t reservation = 0;
  int64_t submit_us = 0;
  int64_t deadline_us = 0;  // 0 = none
  QueryControl control;
  QueryWork work;

  mutable std::mutex mu;
  std::condition_variable cv;  // fires on terminal transition
  QueryState state = QueryState::kQueued;
  Status status;
  bool reserved = false;  // holds a governor reservation right now
  CollectedTable result;
  int64_t start_us = 0;
  int64_t finish_us = 0;
};

}  // namespace detail

using detail::QueryRecord;

namespace {

/// IDF_SLOW_QUERY_MS: a query whose running phase takes at least this many
/// milliseconds emits one structured `slow_query {...}` WARN line carrying
/// its full resource profile (docs/OBSERVABILITY.md). Unset = disabled.
int64_t SlowQueryThresholdMs() {
  static const int64_t threshold = [] {
    const char* env = std::getenv("IDF_SLOW_QUERY_MS");
    if (env == nullptr || env[0] == '\0') return static_cast<int64_t>(-1);
    char* end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0' || v < 0) {
      IDF_LOG_WARN("ignoring unparsable IDF_SLOW_QUERY_MS='%s'", env);
      return static_cast<int64_t>(-1);
    }
    return static_cast<int64_t>(v);
  }();
  return threshold;
}

/// One query's /queries row: the record's state machine plus a summary of
/// its resource profile (the full profile, with per-stage rows and the
/// query's recent events, is served at /queries/<id>).
std::string RenderQueryJson(const std::shared_ptr<QueryRecord>& rec,
                            int64_t now) {
  std::lock_guard<std::mutex> lk(rec->mu);
  const int64_t end = Terminal(rec->state) ? rec->finish_us : now;
  const double age = static_cast<double>(end - rec->submit_us) * 1e-6;
  std::string out = "{\"id\":" + std::to_string(rec->id);
  if (!rec->label.empty()) {
    out += ",\"label\":\"" + JsonEscape(rec->label) + "\"";
  }
  out += ",\"state\":\"" + std::string(QueryStateName(rec->state)) + "\"";
  out += ",\"age_seconds\":" + std::to_string(age);
  out += ",\"reserved_bytes\":" +
         std::to_string(rec->reserved ? rec->reservation : 0);
  out += ",\"reservation_bytes\":" + std::to_string(rec->reservation);
  out += ",\"priority\":" + std::to_string(rec->priority);
  out += ",\"stages_completed\":" +
         std::to_string(rec->control.stages_completed());
  obs::QueryProfileSnapshot snap;
  if (obs::QueryProfileRegistry::Global().Snapshot(rec->id, &snap)) {
    out += ",\"tasks\":" + std::to_string(snap.tasks);
    out += ",\"task_wall_us\":" + std::to_string(snap.task_wall_us);
    out += ",\"resident_hits\":" + std::to_string(snap.resident_hits);
    out += ",\"resident_misses\":" + std::to_string(snap.resident_misses);
    out += ",\"bytes_spilled\":" + std::to_string(snap.bytes_spilled);
    out += ",\"bytes_reloaded\":" + std::to_string(snap.bytes_reloaded);
    out += ",\"peak_pinned_bytes\":" + std::to_string(snap.peak_pinned_bytes);
    out += ",\"admission_wait_us\":" + std::to_string(snap.admission_wait_us);
  }
  if (Terminal(rec->state) && !rec->status.ok()) {
    out += ",\"status\":\"" + JsonEscape(rec->status.ToString()) + "\"";
  }
  return out + "}";
}

}  // namespace

const char* QueryStateName(QueryState state) {
  switch (state) {
    case QueryState::kQueued: return "queued";
    case QueryState::kRunning: return "running";
    case QueryState::kDone: return "done";
    case QueryState::kFailed: return "failed";
    case QueryState::kCancelled: return "cancelled";
    case QueryState::kExpired: return "expired";
    case QueryState::kRejected: return "rejected";
  }
  return "unknown";
}

// ---- QueryHandle ------------------------------------------------------------

uint64_t QueryHandle::id() const { return rec_ != nullptr ? rec_->id : 0; }

Status QueryHandle::Wait() {
  IDF_CHECK_MSG(rec_ != nullptr, "Wait on an invalid QueryHandle");
  std::unique_lock<std::mutex> lk(rec_->mu);
  rec_->cv.wait(lk, [&] { return Terminal(rec_->state); });
  return rec_->status;
}

bool QueryHandle::Done() const {
  if (rec_ == nullptr) return false;
  std::lock_guard<std::mutex> lk(rec_->mu);
  return Terminal(rec_->state);
}

QueryState QueryHandle::state() const {
  IDF_CHECK_MSG(rec_ != nullptr, "state on an invalid QueryHandle");
  std::lock_guard<std::mutex> lk(rec_->mu);
  return rec_->state;
}

Status QueryHandle::status() const {
  IDF_CHECK_MSG(rec_ != nullptr, "status on an invalid QueryHandle");
  std::lock_guard<std::mutex> lk(rec_->mu);
  return rec_->status;
}

void QueryHandle::Cancel() {
  if (rec_ == nullptr) return;
  // Cooperative: the flag is observed by the admission loop (queued), the
  // engine's task boundaries (running), and the driver's post-work check.
  rec_->control.Cancel();
}

Result<CollectedTable> QueryHandle::TakeResult() {
  IDF_CHECK_MSG(rec_ != nullptr, "TakeResult on an invalid QueryHandle");
  std::lock_guard<std::mutex> lk(rec_->mu);
  if (!Terminal(rec_->state)) {
    return Status::FailedPrecondition("query still in flight");
  }
  if (!rec_->status.ok()) return rec_->status;
  return std::move(rec_->result);
}

uint32_t QueryHandle::stages_completed() const {
  return rec_ != nullptr ? rec_->control.stages_completed() : 0;
}

// ---- config -----------------------------------------------------------------

QueryServiceConfig QueryServiceConfig::FromEnv() {
  QueryServiceConfig config;
  if (const char* env = std::getenv("IDF_SERVE_WORKERS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) {
      config.workers = static_cast<uint32_t>(v);
    } else {
      IDF_LOG_WARN("ignoring unparsable IDF_SERVE_WORKERS='%s'", env);
    }
  }
  if (const char* env = std::getenv("IDF_ADMIT_QUEUE_DEPTH")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) {
      config.max_queue = static_cast<uint32_t>(v);
    } else {
      IDF_LOG_WARN("ignoring unparsable IDF_ADMIT_QUEUE_DEPTH='%s'", env);
    }
  }
  if (const char* env = std::getenv("IDF_ADMIT_RESERVATION")) {
    Result<uint64_t> parsed = mem::ParseByteSize(env);
    if (parsed.ok()) {
      config.default_reservation_bytes = *parsed;
    } else {
      IDF_LOG_WARN("ignoring unparsable IDF_ADMIT_RESERVATION='%s'", env);
    }
  }
  if (const char* env = std::getenv("IDF_ADMIT_POLICY")) {
    const std::string policy = env;
    if (policy == "reject") {
      config.policy = AdmitPolicy::kReject;
    } else if (policy == "queue") {
      config.policy = AdmitPolicy::kQueue;
    } else {
      IDF_LOG_WARN("ignoring unknown IDF_ADMIT_POLICY='%s'", env);
    }
  }
  return config;
}

// ---- /queries introspection -------------------------------------------------

namespace {

// Live services, so the process-wide /queries handler (registered once,
// never removed — the introspection server is a leaky singleton) can always
// resolve the current set.
std::mutex g_services_mu;
std::vector<QueryService*> g_services;

void RegisterServiceForIntrospection(QueryService* service) {
  std::lock_guard<std::mutex> lk(g_services_mu);
  g_services.push_back(service);
  static bool handler_installed = false;
  if (!handler_installed) {
    handler_installed = true;
    obs::IntrospectionServer::Global().AddJsonHandler("/queries", [] {
      std::lock_guard<std::mutex> lock(g_services_mu);
      std::string out = "[";
      for (QueryService* s : g_services) {
        if (out.size() > 1) out += ",";
        out += s->QueriesJson();
      }
      return out + "]";
    });
    obs::IntrospectionServer::Global().AddPrefixHandler(
        "/queries/", [](const std::string& path) -> std::string {
          // /queries/<id>: one query's record, its full resource profile,
          // and its slice of the recent event ring. Returning "" makes the
          // server answer 404 (unparsable or unknown id).
          const char* tail = path.c_str() + sizeof("/queries/") - 1;
          char* end = nullptr;
          const unsigned long long id = std::strtoull(tail, &end, 10);
          if (end == tail || *end != '\0' || id == 0) return "";
          std::string record;
          {
            std::lock_guard<std::mutex> lock(g_services_mu);
            for (QueryService* s : g_services) {
              record = s->QueryJson(id);
              if (!record.empty()) break;
            }
          }
          obs::QueryProfileSnapshot snap;
          const bool has_profile =
              obs::QueryProfileRegistry::Global().Snapshot(id, &snap);
          if (record.empty() && !has_profile) return "";
          std::string out = "{\"id\":" + std::to_string(id);
          out += ",\"record\":";
          out += record.empty() ? std::string("null") : record;
          out += ",\"profile\":";
          out += has_profile ? obs::QueryProfileJson(snap) : "null";
          // The newest ring events stamped with this id, oldest first,
          // bounded so a hot query cannot balloon the document.
          out += ",\"events\":[";
          const std::vector<obs::FlightEvent> events =
              obs::FlightRecorder::Global().Snapshot();
          std::vector<const obs::FlightEvent*> mine;
          for (const obs::FlightEvent& e : events) {
            if (e.q == id) mine.push_back(&e);
          }
          const size_t start = mine.size() > 128 ? mine.size() - 128 : 0;
          for (size_t i = start; i < mine.size(); ++i) {
            if (i > start) out += ",";
            out += obs::EventJson(*mine[i]);
          }
          return out + "]}";
        });
  }
}

void UnregisterServiceForIntrospection(QueryService* service) {
  std::lock_guard<std::mutex> lk(g_services_mu);
  g_services.erase(std::remove(g_services.begin(), g_services.end(), service),
                   g_services.end());
}

}  // namespace

// ---- QueryService -----------------------------------------------------------

QueryService::QueryService(Session& session, QueryServiceConfig config)
    : session_(session), config_(config) {
  IDF_CHECK_MSG(config_.workers > 0, "QueryService needs at least one worker");
  workers_.reserve(config_.workers);
  for (uint32_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  RegisterServiceForIntrospection(this);
}

QueryService::~QueryService() {
  Shutdown(/*cancel_pending=*/true);
  UnregisterServiceForIntrospection(this);
}

QueryHandle QueryService::Submit(QueryWork work, QueryOptions options) {
  ServerMetrics& sm = ServerMetrics::Get();
  obs::FlightRecorder& fr = obs::FlightRecorder::Global();

  auto rec = std::make_shared<QueryRecord>();
  // Process-global id sequence (shared with EXPLAIN ANALYZE's ephemeral
  // scopes) so the profile registry never merges queries from two services.
  // The control carries the id into the engine: pool workers re-install it
  // for attribution (obs/query_profile.h).
  rec->id = obs::AllocateQueryId();
  rec->control.set_query_id(rec->id);
  rec->label = std::move(options.label);
  rec->name_id =
      fr.enabled() && !rec->label.empty() ? fr.InternName(rec->label) : 0;
  rec->priority = options.priority;
  rec->reservation = options.reservation_bytes != 0
                         ? options.reservation_bytes
                         : config_.default_reservation_bytes;
  rec->submit_us = QueryControl::NowMicros();
  if (options.deadline_seconds > 0) {
    rec->deadline_us =
        rec->submit_us + static_cast<int64_t>(options.deadline_seconds * 1e6);
    rec->control.SetDeadlineMicros(rec->deadline_us);
  }
  rec->work = std::move(work);

  sm.submitted.Increment();
  Status reject;
  {
    std::lock_guard<std::mutex> lk(mu_);
    fr.Record(obs::EventType::kQuerySubmit, rec->name_id, rec->id,
              rec->reservation, queue_.size());
    if (stop_) {
      reject = Status::FailedPrecondition("query service is shut down");
    } else if (queue_.size() >= config_.max_queue) {
      reject = Status::ResourceExhausted(
          "admission queue full (" + std::to_string(queue_.size()) + " of " +
          std::to_string(config_.max_queue) + ")");
      fr.Record(obs::EventType::kQueryReject, rec->name_id, rec->id,
                rec->reservation, 0);
    } else {
      queue_.push_back(rec);
      live_.push_back(rec);
      sm.queue_depth.Set(static_cast<double>(queue_.size()));
    }
  }
  if (!reject.ok()) {
    Finish(rec, QueryState::kRejected, std::move(reject));
  } else {
    work_cv_.notify_one();
  }
  return QueryHandle(std::move(rec));
}

QueryHandle QueryService::SubmitSql(const std::string& sql,
                                    QueryOptions options) {
  if (options.label.empty()) options.label = sql.substr(0, 48);
  return Submit(
      [sql](QueryContext& ctx) -> Status {
        IDF_ASSIGN_OR_RETURN(DataFrame df, ctx.session.Sql(sql));
        IDF_ASSIGN_OR_RETURN(ctx.result, df.Collect());
        return Status::OK();
      },
      std::move(options));
}

std::shared_ptr<QueryRecord> QueryService::PopLocked() {
  // Highest priority first; FIFO (submit order) within a priority. The
  // queue is small (max_queue bounded), so a linear scan beats maintaining
  // a heap that would lose submit order.
  auto best = queue_.begin();
  for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
    if ((*it)->priority > (*best)->priority) best = it;
  }
  std::shared_ptr<QueryRecord> rec = std::move(*best);
  queue_.erase(best);
  return rec;
}

void QueryService::WorkerLoop() {
  ServerMetrics& sm = ServerMetrics::Get();
  obs::FlightRecorder& fr = obs::FlightRecorder::Global();
  mem::MemoryGovernor& gov = mem::MemoryGovernor::Global();

  while (true) {
    std::shared_ptr<QueryRecord> rec;
    bool cancelling = false;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      rec = PopLocked();
      cancelling = stop_ && cancel_pending_;
      sm.queue_depth.Set(static_cast<double>(queue_.size()));
    }

    // Chaos admission site: stall between dequeue and the pre-admission
    // checks, widening the window in which a client cancel or deadline can
    // land on a queued query (admission-queue churn).
    if (chaos::ChaosEngine::Active()) {
      const uint32_t delay_us =
          chaos::ChaosEngine::Global().OnAdmissionDelayUs(rec->id);
      if (delay_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
      }
    }

    // Pre-admission resolution of queries that should never start.
    const int64_t now = QueryControl::NowMicros();
    if (cancelling) {
      Finish(rec, QueryState::kCancelled,
             Status::Cancelled("query service shut down"));
      continue;
    }
    if (rec->control.cancel_requested()) {
      fr.Record(obs::EventType::kQueryCancel, rec->name_id, rec->id, 0,
                static_cast<uint64_t>(now - rec->submit_us));
      Finish(rec, QueryState::kCancelled,
             Status::Cancelled("query cancelled while queued"));
      continue;
    }
    if (rec->deadline_us != 0 && now >= rec->deadline_us) {
      fr.Record(obs::EventType::kQueryDeadline, rec->name_id, rec->id, 0,
                static_cast<uint64_t>(now - rec->submit_us));
      Finish(rec, QueryState::kExpired,
             Status::DeadlineExceeded("deadline expired while queued"));
      continue;
    }

    // Admission: reserve the declared working set against the governor's
    // budget. A reservation that can never fit is rejected under either
    // policy; a transient shortfall blocks this driver (kQueue) or rejects
    // (kReject). Other drivers keep serving while this one waits, so one
    // over-sized query cannot idle the pool.
    const uint64_t budget = gov.budget_bytes();
    if (budget > 0 && rec->reservation > budget) {
      fr.Record(obs::EventType::kQueryReject, rec->name_id, rec->id,
                rec->reservation, 1);
      sm.rejected.Increment();
      Finish(rec, QueryState::kRejected,
             Status::ResourceExhausted(
                 "reservation of " + std::to_string(rec->reservation) +
                 " bytes exceeds the whole budget (" + std::to_string(budget) +
                 ")"));
      continue;
    }
    Status admit = gov.TryReserve(rec->reservation);
    if (!admit.ok() && config_.policy == AdmitPolicy::kReject) {
      fr.Record(obs::EventType::kQueryReject, rec->name_id, rec->id,
                rec->reservation, 1);
      sm.rejected.Increment();
      Finish(rec, QueryState::kRejected, std::move(admit));
      continue;
    }
    bool resolved = false;
    while (!admit.ok()) {
      {
        std::unique_lock<std::mutex> lk(mu_);
        if (stop_ && cancel_pending_) {
          lk.unlock();
          Finish(rec, QueryState::kCancelled,
                 Status::Cancelled("query service shut down"));
          resolved = true;
          break;
        }
        // Bounded wait instead of a pure cv wait: deadlines and cancels
        // must be observed even when no reservation is ever released.
        admission_cv_.wait_for(lk, std::chrono::milliseconds(5));
      }
      Status check = rec->control.Check();
      if (!check.ok()) {
        const bool cancelled = check.code() == StatusCode::kCancelled;
        fr.Record(cancelled ? obs::EventType::kQueryCancel
                            : obs::EventType::kQueryDeadline,
                  rec->name_id, rec->id, 0,
                  static_cast<uint64_t>(QueryControl::NowMicros() -
                                        rec->submit_us));
        Finish(rec,
               cancelled ? QueryState::kCancelled : QueryState::kExpired,
               std::move(check));
        resolved = true;
        break;
      }
      admit = gov.TryReserve(rec->reservation);
    }
    if (resolved) continue;

    {
      std::lock_guard<std::mutex> lk(rec->mu);
      rec->reserved = true;
    }
    const int64_t admitted_at = QueryControl::NowMicros();
    const uint64_t queued_us =
        static_cast<uint64_t>(admitted_at - rec->submit_us);
    fr.Record(obs::EventType::kQueryAdmit, rec->name_id, rec->id,
              rec->reservation, queued_us);
    sm.admitted.Increment();
    sm.queued_seconds.Observe(static_cast<double>(queued_us) * 1e-6);
    obs::QueryProfileRegistry::Global().Get(rec->id)->admission_wait_us
        .fetch_add(queued_us, std::memory_order_relaxed);
    RunQuery(rec);
  }
}

void QueryService::RunQuery(const std::shared_ptr<QueryRecord>& rec) {
  ServerMetrics& sm = ServerMetrics::Get();
  obs::FlightRecorder& fr = obs::FlightRecorder::Global();

  // Attribute everything this driver thread does — the kQueryStart/
  // kQueryFinish events below, sequential stages, spills its allocations
  // force — to this query; pool workers re-install the id from the control.
  obs::QueryScope query_scope(rec->id);
  {
    std::lock_guard<std::mutex> lk(rec->mu);
    rec->state = QueryState::kRunning;
    rec->start_us = QueryControl::NowMicros();
  }
  sm.running.Add(1);
  fr.Record(obs::EventType::kQueryStart, rec->name_id, rec->id,
            rec->reservation, static_cast<uint64_t>(rec->priority));

  QueryContext ctx{rec->id, rec->control, session_, {}};
  Status status;
  {
    // Everything the work runs — planning, stages, nested collect — sees
    // this query's control at task boundaries (engine/cancel.h).
    ScopedQueryControl scoped(&rec->control);
    status = rec->work ? rec->work(ctx) : Status::OK();
  }
  // A cancel/deadline that landed after the work's last engine check still
  // claims the query (clients get a definitive kCancelled, not a result
  // raced against their own Cancel call).
  if (status.ok()) status = rec->control.Check();

  const int64_t finished_at = QueryControl::NowMicros();
  const uint64_t run_us = static_cast<uint64_t>(finished_at - rec->start_us);
  sm.running.Add(-1);
  sm.query_seconds.Observe(static_cast<double>(run_us) * 1e-6);

  QueryState state = QueryState::kDone;
  if (status.code() == StatusCode::kCancelled) {
    state = QueryState::kCancelled;
    fr.Record(obs::EventType::kQueryCancel, rec->name_id, rec->id, 1,
              static_cast<uint64_t>(finished_at - rec->submit_us));
  } else if (status.code() == StatusCode::kDeadlineExceeded) {
    state = QueryState::kExpired;
    fr.Record(obs::EventType::kQueryDeadline, rec->name_id, rec->id, 1,
              static_cast<uint64_t>(finished_at - rec->submit_us));
  } else if (!status.ok()) {
    state = QueryState::kFailed;
  }
  fr.Record(obs::EventType::kQueryFinish, rec->name_id, rec->id,
            static_cast<uint64_t>(status.code()), run_us);
  const int64_t slow_ms = SlowQueryThresholdMs();
  if (slow_ms >= 0 && run_us >= static_cast<uint64_t>(slow_ms) * 1000) {
    // One structured line per slow query: grep for `slow_query ` and the
    // rest of the line is a JSON object (docs/OBSERVABILITY.md).
    obs::QueryProfileSnapshot snap;
    const std::string profile =
        obs::QueryProfileRegistry::Global().Snapshot(rec->id, &snap)
            ? obs::QueryProfileJson(snap)
            : "null";
    IDF_LOG_WARN(
        "slow_query {\"query_id\":%llu,\"label\":\"%s\",\"state\":\"%s\","
        "\"run_ms\":%llu,\"queued_ms\":%llu,\"profile\":%s}",
        static_cast<unsigned long long>(rec->id),
        JsonEscape(rec->label).c_str(), QueryStateName(state),
        static_cast<unsigned long long>(run_us / 1000),
        static_cast<unsigned long long>(
            (rec->start_us - rec->submit_us) / 1000),
        profile.c_str());
  }
  if (status.ok()) {
    std::lock_guard<std::mutex> lk(rec->mu);
    rec->result = std::move(ctx.result);
  }
  Finish(rec, state, std::move(status));
}

void QueryService::Finish(const std::shared_ptr<QueryRecord>& rec,
                          QueryState state, Status status) {
  ServerMetrics& sm = ServerMetrics::Get();
  bool release = false;
  {
    std::lock_guard<std::mutex> lk(rec->mu);
    if (Terminal(rec->state)) return;
    rec->state = state;
    rec->status = std::move(status);
    rec->finish_us = QueryControl::NowMicros();
    release = rec->reserved;
    rec->reserved = false;
  }
  if (release) {
    mem::MemoryGovernor::Global().ReleaseReservation(rec->reservation);
    admission_cv_.notify_all();
  }
  switch (state) {
    case QueryState::kCancelled: sm.cancelled.Increment(); break;
    case QueryState::kExpired: sm.expired.Increment(); break;
    case QueryState::kRejected: sm.rejected.Increment(); break;
    default: break;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    live_.erase(std::remove(live_.begin(), live_.end(), rec), live_.end());
    finished_.push_back(rec);
    // Bounded recent-history tail for /queries.
    while (finished_.size() > 64) finished_.pop_front();
  }
  rec->cv.notify_all();
}

void QueryService::Shutdown(bool cancel_pending) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (shut_down_) return;
    shut_down_ = true;
    stop_ = true;
    cancel_pending_ = cancel_pending;
  }
  if (cancel_pending) {
    // Cooperatively cancel everything in flight; queued entries resolve to
    // kCancelled as workers pop them.
    std::vector<std::shared_ptr<QueryRecord>> live;
    {
      std::lock_guard<std::mutex> lk(mu_);
      live = live_;
    }
    for (const auto& rec : live) rec->control.Cancel();
  }
  work_cv_.notify_all();
  admission_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

size_t QueryService::ActiveQueries() const {
  std::lock_guard<std::mutex> lk(mu_);
  return live_.size();
}

std::string QueryService::QueriesJson() const {
  const int64_t now = QueryControl::NowMicros();
  std::lock_guard<std::mutex> lk(mu_);
  std::string queries;
  for (const auto& rec : live_) {
    if (!queries.empty()) queries += ",";
    queries += RenderQueryJson(rec, now);
  }
  for (const auto& rec : finished_) {
    if (!queries.empty()) queries += ",";
    queries += RenderQueryJson(rec, now);
  }
  return "{\"workers\":" + std::to_string(config_.workers) +
         ",\"max_queue\":" + std::to_string(config_.max_queue) +
         ",\"queue_depth\":" + std::to_string(queue_.size()) +
         ",\"reserved_bytes\":" +
         std::to_string(mem::MemoryGovernor::Global().reserved_bytes()) +
         ",\"queries\":[" + queries + "]}";
}

std::string QueryService::QueryJson(uint64_t id) const {
  const int64_t now = QueryControl::NowMicros();
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& rec : live_) {
    if (rec->id == id) return RenderQueryJson(rec, now);
  }
  for (const auto& rec : finished_) {
    if (rec->id == id) return RenderQueryJson(rec, now);
  }
  return "";
}

}  // namespace idf::server
