#include "types/value.h"

#include <cstdio>

namespace idf {

std::string_view TypeName(TypeId type) {
  switch (type) {
    case TypeId::kBool: return "bool";
    case TypeId::kInt32: return "int32";
    case TypeId::kInt64: return "int64";
    case TypeId::kFloat64: return "float64";
    case TypeId::kString: return "string";
  }
  return "unknown";
}

size_t FixedSlotWidth(TypeId type) {
  switch (type) {
    case TypeId::kBool: return 1;
    case TypeId::kInt32: return 4;
    case TypeId::kInt64: return 8;
    case TypeId::kFloat64: return 8;
    case TypeId::kString: return 8;  // packed (offset:32, length:32)
  }
  return 0;
}

int64_t Value::AsInt64() const {
  IDF_CHECK(!null_);
  switch (type_) {
    case TypeId::kBool: return bool_value() ? 1 : 0;
    case TypeId::kInt32: return int32_value();
    case TypeId::kInt64: return int64_value();
    case TypeId::kFloat64: return static_cast<int64_t>(float64_value());
    case TypeId::kString: break;
  }
  IDF_CHECK_MSG(false, "AsInt64 on string value");
  return 0;
}

double Value::AsFloat64() const {
  IDF_CHECK(!null_);
  switch (type_) {
    case TypeId::kBool: return bool_value() ? 1.0 : 0.0;
    case TypeId::kInt32: return int32_value();
    case TypeId::kInt64: return static_cast<double>(int64_value());
    case TypeId::kFloat64: return float64_value();
    case TypeId::kString: break;
  }
  IDF_CHECK_MSG(false, "AsFloat64 on string value");
  return 0.0;
}

bool Value::operator==(const Value& other) const {
  if (null_ || other.null_) return false;  // SQL three-valued logic collapses
  if (type_ == TypeId::kString || other.type_ == TypeId::kString) {
    if (type_ != other.type_) return false;
    return string_value() == other.string_value();
  }
  if (type_ == other.type_) return storage_ == other.storage_;
  // Cross-numeric comparison widens to double.
  return AsFloat64() == other.AsFloat64();
}

int Value::Compare(const Value& other) const {
  // Nulls sort first, equal to each other.
  if (null_ && other.null_) return 0;
  if (null_) return -1;
  if (other.null_) return 1;
  if (type_ == TypeId::kString || other.type_ == TypeId::kString) {
    IDF_CHECK_MSG(type_ == other.type_, "Compare string with non-string");
    return string_value().compare(other.string_value());
  }
  const double a = AsFloat64();
  const double b = other.AsFloat64();
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

uint64_t Value::Hash() const {
  if (null_) return 0x6e756c6cULL;  // any fixed tag; nulls never index-match
  switch (type_) {
    case TypeId::kBool: return HashInt64(bool_value() ? 1 : 0);
    case TypeId::kInt32: return HashInt64(int32_value());
    case TypeId::kInt64: return HashInt64(int64_value());
    case TypeId::kFloat64: return HashDouble(float64_value());
    case TypeId::kString: return HashString(string_value());
  }
  return 0;
}

std::string Value::ToString() const {
  if (null_) return "NULL";
  char buf[64];
  switch (type_) {
    case TypeId::kBool: return bool_value() ? "true" : "false";
    case TypeId::kInt32:
      std::snprintf(buf, sizeof(buf), "%d", int32_value());
      return buf;
    case TypeId::kInt64:
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(int64_value()));
      return buf;
    case TypeId::kFloat64:
      std::snprintf(buf, sizeof(buf), "%g", float64_value());
      return buf;
    case TypeId::kString:
      return "\"" + string_value() + "\"";
  }
  return "?";
}

}  // namespace idf
