// Schema: an ordered list of named, typed, nullability-annotated fields.
// Shared by the columnar cache (vanilla baseline), the binary row layout
// (Indexed Batch RDD storage), and the SQL planner (name resolution).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/value.h"

namespace idf {

struct Field {
  std::string name;
  TypeId type;
  bool nullable = true;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type &&
           nullable == other.nullable;
  }
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const {
    IDF_CHECK(i < fields_.size());
    return fields_[i];
  }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field with this name, or kNotFound.
  Result<size_t> FieldIndex(std::string_view name) const;
  bool HasField(std::string_view name) const;

  /// Schema of a projection: the named columns in the given order.
  Result<Schema> Project(const std::vector<std::string>& names) const;

  /// Concatenation for join outputs; colliding names on the right side get
  /// a "_r" suffix (matching what our DataFrame::join produces).
  Schema ConcatForJoin(const Schema& right) const;

  bool operator==(const Schema& other) const { return fields_ == other.fields_; }
  bool operator!=(const Schema& other) const { return !(*this == other); }

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

using SchemaPtr = std::shared_ptr<const Schema>;

/// A materialized row of Values, aligned with some Schema. Used at API
/// boundaries and in tests; bulk processing uses RowBatch / ColumnarChunk.
using RowVec = std::vector<Value>;

/// Validates that a row's arity and value types match the schema
/// (null values must carry the field's declared type).
Status ValidateRow(const Schema& schema, const RowVec& row);

}  // namespace idf
