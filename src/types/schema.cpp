#include "types/schema.h"

namespace idf {

Result<size_t> Schema::FieldIndex(std::string_view name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound("no field named '" + std::string(name) +
                          "' in schema " + ToString());
}

bool Schema::HasField(std::string_view name) const {
  return FieldIndex(name).ok();
}

Result<Schema> Schema::Project(const std::vector<std::string>& names) const {
  std::vector<Field> projected;
  projected.reserve(names.size());
  for (const auto& name : names) {
    IDF_ASSIGN_OR_RETURN(size_t idx, FieldIndex(name));
    projected.push_back(fields_[idx]);
  }
  return Schema(std::move(projected));
}

Schema Schema::ConcatForJoin(const Schema& right) const {
  std::vector<Field> fields = fields_;
  fields.reserve(fields_.size() + right.num_fields());
  for (const auto& f : right.fields()) {
    Field copy = f;
    if (HasField(copy.name)) copy.name += "_r";
    fields.push_back(std::move(copy));
  }
  return Schema(std::move(fields));
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ": ";
    out += TypeName(fields_[i].type);
    if (!fields_[i].nullable) out += " NOT NULL";
  }
  out += ")";
  return out;
}

Status ValidateRow(const Schema& schema, const RowVec& row) {
  if (row.size() != schema.num_fields()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema.num_fields()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const Field& f = schema.field(i);
    if (row[i].is_null()) {
      if (!f.nullable) {
        return Status::InvalidArgument("null in NOT NULL field '" + f.name +
                                       "'");
      }
      continue;
    }
    if (row[i].type() != f.type) {
      return Status::InvalidArgument(
          "field '" + f.name + "' expects " + std::string(TypeName(f.type)) +
          " but row has " + std::string(TypeName(row[i].type())));
    }
  }
  return Status::OK();
}

}  // namespace idf
