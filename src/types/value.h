// Scalar type system shared by the SQL layer and the storage layer.
//
// The paper's index "supports any type of column, but for good performance
// primitive column types are recommended" (§III-A). We support the same core
// set: 32/64-bit integers, double, bool, and string; strings used as index
// keys are hashed to 64 bits and verified against the row (§IV-E).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/hash.h"
#include "common/status.h"

namespace idf {

enum class TypeId : uint8_t {
  kBool = 0,
  kInt32 = 1,
  kInt64 = 2,
  kFloat64 = 3,
  kString = 4,
};

std::string_view TypeName(TypeId type);

/// Width of the fixed-size slot a value of this type occupies in the binary
/// row layout (strings occupy an 8-byte offset/length descriptor).
size_t FixedSlotWidth(TypeId type);

/// True for types stored entirely inside their fixed slot.
inline bool IsFixedWidth(TypeId type) { return type != TypeId::kString; }

/// A nullable dynamically-typed scalar. Used at API boundaries (literals,
/// lookup keys, test expectations); hot paths operate on binary rows or
/// columnar vectors instead.
class Value {
 public:
  Value() : type_(TypeId::kBool), null_(true) {}  // typed as bool, but null

  static Value Null(TypeId type) {
    Value v;
    v.type_ = type;
    v.null_ = true;
    return v;
  }
  static Value Bool(bool b) { return Value(TypeId::kBool, Storage(b)); }
  static Value Int32(int32_t i) { return Value(TypeId::kInt32, Storage(i)); }
  static Value Int64(int64_t i) { return Value(TypeId::kInt64, Storage(i)); }
  static Value Float64(double d) { return Value(TypeId::kFloat64, Storage(d)); }
  static Value String(std::string s) {
    return Value(TypeId::kString, Storage(std::move(s)));
  }

  TypeId type() const { return type_; }
  bool is_null() const { return null_; }

  bool bool_value() const { return Get<bool>(TypeId::kBool); }
  int32_t int32_value() const { return Get<int32_t>(TypeId::kInt32); }
  int64_t int64_value() const { return Get<int64_t>(TypeId::kInt64); }
  double float64_value() const { return Get<double>(TypeId::kFloat64); }
  const std::string& string_value() const {
    IDF_CHECK(type_ == TypeId::kString && !null_);
    return std::get<std::string>(storage_);
  }

  /// Numeric widening view: any non-null numeric value as int64 / double.
  /// Aborts on strings — the caller must dispatch on type() first.
  int64_t AsInt64() const;
  double AsFloat64() const;

  /// SQL equality: null == anything is false (callers needing null-aware
  /// semantics check is_null() explicitly).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order within one type (nulls first); used by sort-merge join.
  /// Comparing values of different numeric types compares as double.
  int Compare(const Value& other) const;

  /// Stable 64-bit hash consistent with operator== for same-typed values.
  /// Matches the row-level key hashing in storage/row_layout.h so a Value key
  /// probes the same cTrie slot as the row that stored it.
  uint64_t Hash() const;

  std::string ToString() const;

 private:
  using Storage = std::variant<bool, int32_t, int64_t, double, std::string>;

  Value(TypeId type, Storage storage)
      : type_(type), null_(false), storage_(std::move(storage)) {}

  template <typename T>
  T Get(TypeId expected) const {
    IDF_CHECK(type_ == expected && !null_);
    return std::get<T>(storage_);
  }

  TypeId type_;
  bool null_;
  Storage storage_;
};

}  // namespace idf
