// Stage-level parallel task scheduling (the real-execution counterpart of
// the DES in engine/des.h).
//
// Cluster::RunStage dispatches every task to an *executor lane* — one FIFO
// queue per alive executor, filled in task-index order. Host worker threads
// each claim a home lane (locality: a thread drains "its" executor's tasks
// first) and steal from the longest other lane when their home lane runs
// dry. Stealing moves only which host thread runs a task; the task's
// executor assignment — and therefore its DES placement, block homes, and
// shuffle accounting — is fixed up front by the driver, so sequential and
// parallel runs produce identical results and metrics totals.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "engine/topology.h"

namespace idf {

/// Number of host threads Cluster::RunStage may use. Resolution order:
///  1. IDF_PARALLEL env var: 0 or 1 => sequential, N => N threads
///     (single-threaded debugging escape hatch, wins over config);
///  2. config.scheduler_threads when non-zero;
///  3. auto: min(config.total_executors(), hardware_concurrency).
/// Always >= 1; 1 means the sequential in-line path.
uint32_t ResolveSchedulerThreads(const ClusterConfig& config);

/// Per-stage work queues: one lane per alive executor. Thread-safe; built
/// by the driver before workers start, drained concurrently.
class TaskLanes {
 public:
  /// `lane_of[i]` is the lane (dense alive-executor index) of task i.
  /// Tasks enqueue in index order, so each lane pops oldest-first.
  TaskLanes(const std::vector<uint32_t>& lane_of, size_t num_lanes);

  /// Claims the next task for a worker homed on lane `home`: the home lane
  /// if non-empty, else the longest other lane (work stealing). Returns
  /// false when every lane is empty. `*stolen` reports whether the task
  /// came from a foreign lane.
  bool Pop(size_t home, uint32_t* task_index, bool* stolen);

 private:
  std::mutex mutex_;
  std::vector<std::deque<uint32_t>> lanes_;
};

}  // namespace idf
