// Stage-level parallel task scheduling (the real-execution counterpart of
// the DES in engine/des.h).
//
// Cluster::RunStage dispatches every task to an *executor lane* — one FIFO
// queue per alive executor, filled in task-index order. Host worker threads
// each claim a home lane (locality: a thread drains "its" executor's tasks
// first) and steal from the longest other lane when their home lane runs
// dry. Stealing moves only which host thread runs a task; the task's
// executor assignment — and therefore its DES placement, block homes, and
// shuffle accounting — is fixed up front by the driver, so sequential and
// parallel runs produce identical results and metrics totals.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "engine/topology.h"

namespace idf {

/// Number of host threads Cluster::RunStage may use. Resolution order:
///  1. IDF_PARALLEL env var: 0 or 1 => sequential, N => N threads
///     (single-threaded debugging escape hatch, wins over config);
///  2. config.scheduler_threads when non-zero;
///  3. auto: min(config.total_executors(), hardware_concurrency).
/// Always >= 1; 1 means the sequential in-line path.
uint32_t ResolveSchedulerThreads(const ClusterConfig& config);

/// Per-stage work queues: one lane per alive executor. Thread-safe; built
/// by the driver before workers start, drained concurrently.
class TaskLanes {
 public:
  /// Returned by Pop when the lane a task came from has no further queued
  /// task (nothing to prefetch for).
  static constexpr uint32_t kNoTask = 0xffffffffu;

  /// `lane_of[i]` is the lane (dense alive-executor index) of task i.
  /// Tasks enqueue in `dispatch_order` (the driver's residency-preferred
  /// ordering; task-index order when residency is moot, the default), so
  /// each lane pops its most-preferred queued task first.
  TaskLanes(const std::vector<uint32_t>& lane_of, size_t num_lanes,
            const std::vector<uint32_t>& dispatch_order = {});

  /// Claims the next task for a worker homed on lane `home`: the home lane
  /// if non-empty, else the longest other lane (work stealing). Returns
  /// false when every lane is empty. `*stolen` reports whether the task
  /// came from a foreign lane; `*next_in_lane` is the task now at the head
  /// of the lane the claim came from (kNoTask when the lane drained) — the
  /// per-lane prefetch hint: that task runs next on this lane, so its
  /// spilled inputs can be faulted in while the claimed task executes.
  bool Pop(size_t home, uint32_t* task_index, bool* stolen,
           uint32_t* next_in_lane = nullptr);

 private:
  std::mutex mutex_;
  std::vector<std::deque<uint32_t>> lanes_;
};

}  // namespace idf
