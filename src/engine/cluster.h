// Cluster: the engine facade tying together topology, block manager, shuffle
// service, discrete-event simulation, lineage, and failure injection.
//
// Execution model (see DESIGN.md and docs/SCHEDULER.md):
//  - task bodies run for real on the host — concurrently, on a thread pool
//    with one work lane per executor (engine/scheduler.h) — and are
//    individually timed;
//  - the StageSimulator replays the stage on the configured (simulated)
//    topology to produce cluster-scale makespans;
//  - fault tolerance follows the paper's §III-D: lost blocks are recomputed
//    from registered lineage (for indexed partitions that means re-building
//    the index and replaying appends — the Fig. 12 recovery spike).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "common/threadpool.h"
#include "engine/block.h"
#include "engine/cancel.h"
#include "engine/des.h"
#include "engine/metrics.h"
#include "engine/shuffle.h"
#include "engine/topology.h"

namespace idf {

class Cluster;

/// Handed to every task body. Accumulates metrics and declared remote reads
/// for the simulator.
class TaskContext {
 public:
  TaskContext(Cluster* cluster, ExecutorId executor)
      : cluster_(cluster), executor_(executor) {}

  Cluster& cluster() { return *cluster_; }
  ExecutorId executor() const { return executor_; }
  TaskMetrics& metrics() { return metrics_; }

  /// Declares that this task read `bytes` produced at `source` (for network
  /// modeling). Local reads (source == this executor) are free.
  void AddRead(ExecutorId source, uint64_t bytes) {
    reads_.push_back(SimRead{source, bytes});
    if (source != executor_) metrics_.shuffle_bytes_read += bytes;
  }

  const std::vector<SimRead>& reads() const { return reads_; }

 private:
  Cluster* cluster_;
  ExecutorId executor_;
  TaskMetrics metrics_;
  std::vector<SimRead> reads_;
};

using TaskBody = std::function<Status(TaskContext&)>;

/// One partition a task will read, declared up front so the scheduler can
/// consult the memory governor's residency map (spill-aware dispatch) and
/// the per-lane prefetcher can fault spilled inputs in ahead of the task.
struct PartitionInput {
  uint64_t rdd = 0;
  uint32_t partition = 0;
};

struct TaskSpec {
  ExecutorId preferred = kAnyExecutor;
  std::vector<SimRead> static_reads;  // known before the task runs
  /// Simulated-only compute time added to this task in the DES (used to model
  /// per-executor work the driver performed once for real, e.g. hash builds
  /// replicated to every executor after a broadcast).
  double extra_sim_seconds = 0;
  TaskBody body;
  /// Input partitions (optional). Tasks that declare them participate in
  /// residency-preferred dispatch and input prefetch; tasks that don't are
  /// treated as resident (no spill cost known).
  std::vector<PartitionInput> inputs;
};

struct StageSpec {
  std::string name;
  std::vector<TaskSpec> tasks;
};

/// Recomputes one partition of an RDD at a specific version (lineage).
using PartitionComputeFn =
    std::function<Result<BlockPtr>(uint32_t partition, uint64_t version,
                                   TaskContext& ctx)>;

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  const ClusterConfig& config() const { return config_; }
  BlockManager& blocks() { return blocks_; }
  ShuffleService& shuffle() { return shuffle_; }
  StageSimulator& simulator() { return simulator_; }

  uint64_t NewRddId() {
    return next_rdd_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Runs a stage. The driver assigns every task an executor up front, in
  /// task-index order (preferred executor when alive, else round-robin over
  /// the alive set); tasks then execute concurrently on the scheduler's
  /// thread pool — one work lane per executor, idle threads stealing from
  /// the longest lane — and their results merge back in task-index order,
  /// so metrics totals, DES accounting, and EXPLAIN ANALYZE profiles are
  /// identical to a sequential run. First task failure wins: its Status
  /// aborts the stage and unstarted tasks are cancelled. Runs in-line
  /// sequentially when scheduler_threads() == 1 or when called from inside
  /// a task body (re-entrancy guard).
  ///
  /// Cooperative cancellation: when the calling thread has a QueryControl
  /// installed (ScopedQueryControl — the query service does this around
  /// each query), the stage checks it at entry and before every task body;
  /// a cancelled or past-deadline query fails with kCancelled /
  /// kDeadlineExceeded via the same first-error-wins unwinding as any task
  /// failure. Granularity is the task boundary — running bodies finish
  /// undisturbed, so pins and shuffle state release through their normal
  /// error/success paths (engine/cancel.h).
  Result<StageMetrics> RunStage(const StageSpec& stage);

  /// Cancellation hooks for RunPipelinedStages, coordinating the scheduler
  /// with a streaming transport (docs/SHUFFLE.md).
  struct PipelineHooks {
    /// Fired exactly once, on the first task failure: wake anything blocked
    /// on the transport (ShuffleService::AbortStreaming).
    std::function<void()> on_cancel;
    /// True for the secondary statuses cancellation itself induced
    /// (IsShuffleAborted): the merge prefers the root-cause failure.
    std::function<bool(const Status&)> is_abort;
  };

  /// Fused-stage mode: runs `map_stage` and `reduce_stage` as ONE stage so
  /// reduce tasks start concurrently with map tasks — consumers of a
  /// streaming shuffle begin inserting while upstream partitions are still
  /// encoding. Both sub-stages get the same per-stage executor assignment
  /// they would get from back-to-back RunStage calls; workers alternate
  /// claim preference between the two lane sets (odd workers reduce-first)
  /// and merge/DES accounting runs maps-then-reduces in task-index order,
  /// so totals match the two-stage path exactly. Falls back to in-line
  /// maps-then-reduces when sequential (1 thread, or nested in a task).
  Result<StageMetrics> RunPipelinedStages(const StageSpec& map_stage,
                                          const StageSpec& reduce_stage,
                                          const PipelineHooks& hooks = {});

  /// Runs a shuffle's map and reduce stages. Barrier mode: two RunStage
  /// calls (two StageMetrics). Pipelined: arms the streaming channels
  /// (window = ShuffleWindowBytes(), enforced only when actually parallel —
  /// a sequential run blocking on its own window would deadlock) and runs
  /// one fused stage (one StageMetrics). Callers must Release the shuffle
  /// themselves, on success and on error.
  Result<std::vector<StageMetrics>> RunShuffleStages(
      uint64_t shuffle_id, const StageSpec& map_stage,
      const StageSpec& reduce_stage, bool pipelined);

  /// Work-stealing hook for starved shuffle consumers: when the calling
  /// thread is a fused-stage worker and pending map tasks exist, claims and
  /// runs one instead of letting the lane sleep on its channel. Returns
  /// true when it ran a task (retries the channel next), false when there
  /// is nothing to steal (caller blocks).
  bool TryHelpPipelinedMapTask();

  /// Host threads RunStage may use (resolved once at construction from
  /// ClusterConfig::scheduler_threads and IDF_PARALLEL). 1 = sequential.
  uint32_t scheduler_threads() const { return scheduler_threads_; }

  // ---- placement -----------------------------------------------------

  /// Deterministic home executor for a partition, among alive executors.
  /// When an executor dies its partitions re-home consistently.
  ExecutorId HomeExecutorFor(uint64_t rdd, uint32_t partition) const;

  bool IsAlive(ExecutorId e) const;
  std::vector<ExecutorId> AliveExecutors() const;

  // ---- failure injection (§IV-D Fault-Tolerance) ------------------------

  /// Kills an executor: drops its blocks, excludes it from placement.
  /// Returns the number of blocks lost.
  size_t KillExecutor(ExecutorId e);
  void ReviveExecutor(ExecutorId e);

  /// Guarded kill for concurrent injectors (the chaos engine fires kills
  /// from racing task boundaries): refuses — instead of CHECK-failing —
  /// when `e` is already dead or is the last alive executor. The check and
  /// the kill are atomic under alive_mutex_, so two racing chaos kills can
  /// never take the cluster to zero executors.
  bool TryKillExecutor(ExecutorId e);

  // ---- lineage -------------------------------------------------------

  void RegisterLineage(uint64_t rdd, PartitionComputeFn fn);

  /// Fetches a block, recomputing it from lineage when missing (lost
  /// executor, never materialized). Recompute time lands in
  /// ctx.metrics().recovery_seconds, reproducing the Fig. 12 spike.
  Result<BlockPtr> GetOrCompute(const BlockId& id, TaskContext& ctx);

 private:
  struct TaskResult;       // per-task outcome slot (cluster.cpp)
  struct PipelineContext;  // fused-stage shared state (cluster.cpp)

  /// The driver-side plan for one stage: executor assignment (task-index
  /// order, determinism-bearing), lanes, and the residency-preferred claim
  /// order. Factored out of RunStage so the fused path can plan its two
  /// sub-stages against one shared alive snapshot.
  struct StagePlan {
    std::vector<ExecutorId> assigned;
    std::vector<uint32_t> lane_of;
    std::vector<uint32_t> order;   // dispatch (claim) order
    std::vector<char> resident;    // all declared inputs in memory?
    bool have_residency = false;   // any spilled inputs this stage?
  };
  StagePlan BuildStagePlan(const StageSpec& stage,
                           const std::vector<ExecutorId>& alive);

  /// Executes one task body: span, context, timing, global counters, flight-
  /// recorder task events (stage_name_id is the stage name interned once by
  /// RunStage). The outcome lands in `out`; merging happens later, on the
  /// driver, in task-index order. `control` is the owning query's
  /// cancellation token (nullptr outside a served query): checked before
  /// the body runs and installed on this thread for the body's duration so
  /// nested stages and polling bodies observe it.
  void ExecuteTask(const StageSpec& stage, uint32_t index, ExecutorId executor,
                   uint64_t stage_span_id, uint32_t stage_name_id,
                   QueryControl* control, TaskResult& out);

  /// Task-boundary chaos site: consults the chaos engine (scripted hooks +
  /// armed probability faults) and applies the returned TaskAction with
  /// engine/mem facilities — delay the lane, evict the world, squeeze the
  /// budget, kill this task's executor, or fire the owning query's
  /// cancel/deadline. One relaxed load when chaos is inactive.
  void ApplyTaskChaos(const StageSpec& stage, uint32_t index,
                      ExecutorId executor, QueryControl* control);

  /// Post-kill bookkeeping shared by KillExecutor and TryKillExecutor:
  /// drops the dead executor's blocks and records the kill. Returns the
  /// number of blocks lost.
  size_t DropKilledExecutor(ExecutorId e);

  /// Fused-stage state for the calling worker thread, consulted by
  /// TryHelpPipelinedMapTask (null outside RunPipelinedStages workers).
  static thread_local PipelineContext* t_pipeline_;
  static thread_local size_t t_pipeline_home_;

  /// Lazily started pool of scheduler_threads() workers, shared by every
  /// stage this cluster runs.
  ThreadPool& pool();

  std::vector<ExecutorId> AliveExecutorsLocked() const;  // alive_mutex_ held

  ClusterConfig config_;
  BlockManager blocks_;
  ShuffleService shuffle_;
  StageSimulator simulator_;
  mutable std::mutex alive_mutex_;  // guards alive_ (kills vs. placement)
  std::vector<bool> alive_;
  std::atomic<uint64_t> next_rdd_id_{1};

  uint32_t scheduler_threads_ = 1;
  std::once_flag pool_once_;
  std::unique_ptr<ThreadPool> pool_;

  std::mutex lineage_mutex_;
  std::map<uint64_t, PartitionComputeFn> lineage_;
};

/// Opens the routed-buffer stream a reduce task drains, matching the
/// transport RunShuffleStages selected. Barrier: fetches everything and
/// declares the per-map network reads up front (preserving the classic
/// path's read order for the DES). Pipelined: an ordered channel stream
/// whose idle hook steals pending map work and whose per-map reads are
/// declared as each map's contribution finishes.
std::unique_ptr<RoutedBufferStream> OpenReduceStream(TaskContext& ctx,
                                                     uint64_t shuffle_id,
                                                     uint32_t reduce_part,
                                                     bool pipelined);

}  // namespace idf
