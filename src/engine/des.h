// Discrete-event simulation of stage execution on the configured cluster.
//
// Real task work is executed and timed on the host; this simulator answers
// "how long would this stage have taken on W workers x E executors x C
// cores, with the given NIC model?" — producing the cluster-scale numbers
// for the scalability (Fig. 6), NUMA (Fig. 4), and join (Fig. 7) figures.
//
// Model:
//  - each executor has `cores` slots, each with its own virtual free-time;
//  - each worker has one NIC with separate in/out serialization queues;
//  - a task is placed on its preferred executor (data locality / delay
//    scheduling) unless that executor is so backlogged that moving it to the
//    least-loaded executor wins even after paying to fetch its inputs;
//  - remote reads charge latency + bytes/bandwidth on the source worker's
//    out-queue and the destination worker's in-queue (same-worker transfers
//    use the faster intra-worker path and skip the NIC);
//  - task compute time is multiplied by the topology's NUMA factor.
#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "engine/topology.h"

namespace idf {

struct SimRead {
  ExecutorId source = kAnyExecutor;  // kAnyExecutor => already local
  uint64_t bytes = 0;
};

struct SimTask {
  double compute_seconds = 0;
  ExecutorId preferred = kAnyExecutor;
  std::vector<SimRead> reads;
};

struct SimOutcome {
  double makespan_seconds = 0;
  double network_seconds = 0;  // total serialized transfer time
};

class StageSimulator {
 public:
  explicit StageSimulator(const ClusterConfig& config)
      : config_(config),
        core_free_(config.total_executors() * config.cores_per_executor, 0.0),
        nic_in_free_(config.num_workers, 0.0),
        nic_out_free_(config.num_workers, 0.0) {}

  /// Simulates one stage; clocks persist across calls so that consecutive
  /// stages of a query pipeline queue naturally. Tasks are assigned in
  /// index order (Spark launches tasks in partition order). Thread-safe:
  /// concurrent sessions sharing one cluster interleave whole stages (the
  /// internal mutex), never individual placements.
  SimOutcome RunStage(const std::vector<SimTask>& tasks) {
    std::lock_guard<std::mutex> lock(mutex_);
    SimOutcome outcome;
    const double start = *std::max_element(core_free_.begin(),
                                           core_free_.end());
    double stage_end = start;
    for (const SimTask& task : tasks) {
      const double end = PlaceTask(task, &outcome.network_seconds);
      stage_end = std::max(stage_end, end);
    }
    // A stage is a barrier: no core may start the next stage earlier.
    for (double& t : core_free_) t = std::max(t, stage_end);
    outcome.makespan_seconds = stage_end - start;
    return outcome;
  }

  /// Simulates broadcasting `bytes` from one worker to every other worker
  /// (vanilla BroadcastHashJoin's build-side distribution). Returns the time
  /// until the last worker has the data; clocks advance accordingly.
  double Broadcast(uint64_t bytes) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (config_.num_workers <= 1 || bytes == 0) return 0.0;
    const NetworkConfig& net = config_.network;
    double done = 0.0;
    // Source serializes W-1 sends on its out-NIC (worker 0 by convention).
    double src_out = nic_out_free_[0];
    for (uint32_t w = 1; w < config_.num_workers; ++w) {
      const double transfer =
          net.latency_s + static_cast<double>(bytes) / net.bandwidth_bytes_per_s;
      const double begin = std::max(src_out, nic_in_free_[w]);
      src_out = begin + transfer;
      nic_in_free_[w] = begin + transfer;
      done = std::max(done, begin + transfer);
    }
    nic_out_free_[0] = src_out;
    return done;
  }

  double Now() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return *std::max_element(core_free_.begin(), core_free_.end());
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    std::fill(core_free_.begin(), core_free_.end(), 0.0);
    std::fill(nic_in_free_.begin(), nic_in_free_.end(), 0.0);
    std::fill(nic_out_free_.begin(), nic_out_free_.end(), 0.0);
  }

 private:
  uint32_t CoreBase(ExecutorId e) const { return e * config_.cores_per_executor; }

  /// Earliest-free core of an executor.
  uint32_t BestCore(ExecutorId e) const {
    uint32_t best = CoreBase(e);
    for (uint32_t c = CoreBase(e); c < CoreBase(e) + config_.cores_per_executor;
         ++c) {
      if (core_free_[c] < core_free_[best]) best = c;
    }
    return best;
  }

  ExecutorId LeastLoadedExecutor() const {
    ExecutorId best = 0;
    double best_time = core_free_[BestCore(0)];
    for (ExecutorId e = 1; e < config_.total_executors(); ++e) {
      const double t = core_free_[BestCore(e)];
      if (t < best_time) {
        best_time = t;
        best = e;
      }
    }
    return best;
  }

  double SerializationCost(uint64_t bytes, bool cross_worker) const {
    const NetworkConfig& net = config_.network;
    const double bw =
        cross_worker ? net.bandwidth_bytes_per_s : net.intra_worker_bandwidth;
    return static_cast<double>(bytes) / bw;
  }

  double PlaceTask(const SimTask& task, double* network_seconds) {
    ExecutorId target = task.preferred != kAnyExecutor &&
                                task.preferred < config_.total_executors()
                            ? task.preferred
                            : LeastLoadedExecutor();
    // Delay scheduling: if the preferred executor is backlogged more than a
    // locality timeout versus the least-loaded one, surrender locality
    // (Spark's spark.locality.wait behaviour, §III-D).
    constexpr double kLocalityWait = 3e-3;
    if (task.preferred != kAnyExecutor) {
      const ExecutorId alt = LeastLoadedExecutor();
      if (core_free_[BestCore(target)] >
          core_free_[BestCore(alt)] + kLocalityWait) {
        target = alt;
      }
    }

    const uint32_t core = BestCore(target);
    const uint32_t dst_worker = config_.WorkerOf(target);
    const double start = core_free_[core];

    // Fetch inputs not local to the chosen executor. Fetches are issued in
    // parallel (shuffle clients pipeline); each cross-worker transfer
    // serializes its bytes on the source out-queue and the destination
    // in-queue, and the task starts computing once the slowest input has
    // arrived. Propagation latency delays the reader, not the queues.
    double inputs_ready = start;
    double intra_ser = 0;  // same-worker copies serialize on memory bw
    for (const SimRead& read : task.reads) {
      if (read.source == target || read.bytes == 0) continue;
      const bool has_source = read.source != kAnyExecutor;
      const bool cross_worker =
          !has_source || config_.WorkerOf(read.source) != dst_worker;
      const double ser = SerializationCost(read.bytes, cross_worker);
      if (cross_worker) {
        const uint32_t src_worker =
            has_source ? config_.WorkerOf(read.source) : dst_worker;
        double& out_q = nic_out_free_[src_worker];
        double& in_q = nic_in_free_[dst_worker];
        const double begin = std::max(out_q, in_q);
        out_q = begin + ser;
        in_q = begin + ser;
        const double completion = begin + ser + config_.network.latency_s;
        inputs_ready = std::max(inputs_ready, completion);
        *network_seconds += ser + config_.network.latency_s;
      } else {
        intra_ser += ser;
        *network_seconds += ser;
      }
    }
    inputs_ready = std::max(inputs_ready, start + intra_ser);

    const double end =
        inputs_ready + task.compute_seconds * config_.NumaFactor();
    core_free_[core] = end;
    return end;
  }

  ClusterConfig config_;
  mutable std::mutex mutex_;
  std::vector<double> core_free_;
  std::vector<double> nic_in_free_;
  std::vector<double> nic_out_free_;
};

}  // namespace idf
