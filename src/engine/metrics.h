// Per-task and per-query metrics. The benches report these as the paper's
// figures do: wall/simulated runtimes, shuffle volume, hash-build vs probe
// breakdowns (Fig. 1), recovery overheads (Fig. 12), index hit rates, and
// the COW/snapshot work of multi-version appends (Fig. 9).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

namespace idf {

struct TaskMetrics {
  double compute_seconds = 0;      // measured real CPU work of the task body
  uint64_t shuffle_bytes_read = 0;
  uint64_t shuffle_bytes_written = 0;
  uint64_t rows_read = 0;
  uint64_t rows_written = 0;
  uint64_t index_probes = 0;
  uint64_t index_hits = 0;         // probes that found at least one row
  uint64_t batch_copies = 0;       // COW row-batch opens/clones (Fig. 9)
  uint64_t ctrie_snapshots = 0;    // O(1) version snapshots taken
  double hash_build_seconds = 0;   // time spent (re)building hash tables
  double recovery_seconds = 0;     // lineage recomputation triggered by a task

  void MergeFrom(const TaskMetrics& other) {
    compute_seconds += other.compute_seconds;
    shuffle_bytes_read += other.shuffle_bytes_read;
    shuffle_bytes_written += other.shuffle_bytes_written;
    rows_read += other.rows_read;
    rows_written += other.rows_written;
    index_probes += other.index_probes;
    index_hits += other.index_hits;
    batch_copies += other.batch_copies;
    ctrie_snapshots += other.ctrie_snapshots;
    hash_build_seconds += other.hash_build_seconds;
    recovery_seconds += other.recovery_seconds;
  }

  /// Field-wise `*this - base`; `base` must be an earlier snapshot of the
  /// same accumulator (EXPLAIN ANALYZE attributes deltas to operators).
  TaskMetrics DeltaSince(const TaskMetrics& base) const {
    TaskMetrics d;
    d.compute_seconds = compute_seconds - base.compute_seconds;
    d.shuffle_bytes_read = shuffle_bytes_read - base.shuffle_bytes_read;
    d.shuffle_bytes_written =
        shuffle_bytes_written - base.shuffle_bytes_written;
    d.rows_read = rows_read - base.rows_read;
    d.rows_written = rows_written - base.rows_written;
    d.index_probes = index_probes - base.index_probes;
    d.index_hits = index_hits - base.index_hits;
    d.batch_copies = batch_copies - base.batch_copies;
    d.ctrie_snapshots = ctrie_snapshots - base.ctrie_snapshots;
    d.hash_build_seconds = hash_build_seconds - base.hash_build_seconds;
    d.recovery_seconds = recovery_seconds - base.recovery_seconds;
    return d;
  }
};

struct StageMetrics {
  TaskMetrics totals;          // summed across tasks
  double real_seconds = 0;     // summed per-task host wall time
  double wall_seconds = 0;     // driver-observed stage wall time; with the
                               // parallel scheduler this can be well below
                               // real_seconds (tasks overlap on host threads)
  double simulated_seconds = 0;  // DES makespan on the configured cluster
  double network_seconds = 0;  // portion of the makespan spent in transfers
  uint32_t num_tasks = 0;
  uint32_t recovered_tasks = 0;  // tasks that triggered lineage recompute
};

/// Per-physical-operator accounting for EXPLAIN ANALYZE. Deltas are
/// *inclusive* (children counted); self time is derived at render time by
/// subtracting the children's inclusive numbers.
struct OpProfile {
  std::string label;
  uint32_t executions = 0;
  uint64_t rows_out = 0;
  uint64_t bytes_out = 0;
  double wall_seconds = 0;   // inclusive driver-side wall time
  TaskMetrics inclusive;     // inclusive TaskMetrics delta
};

struct QueryMetrics {
  TaskMetrics totals;
  double real_seconds = 0;
  double wall_seconds = 0;
  double simulated_seconds = 0;
  double network_seconds = 0;
  uint32_t num_stages = 0;
  uint32_t recovered_tasks = 0;

  /// When set (EXPLAIN ANALYZE), PhysicalOp::Execute fills one OpProfile per
  /// operator node, keyed by the node's address.
  std::shared_ptr<std::map<const void*, OpProfile>> op_profile;

  void MergeStage(const StageMetrics& stage) {
    totals.MergeFrom(stage.totals);
    real_seconds += stage.real_seconds;
    wall_seconds += stage.wall_seconds;
    simulated_seconds += stage.simulated_seconds;
    network_seconds += stage.network_seconds;
    recovered_tasks += stage.recovered_tasks;
    ++num_stages;
  }
};

}  // namespace idf
