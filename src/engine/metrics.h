// Per-task and per-query metrics. The benches report these as the paper's
// figures do: wall/simulated runtimes, shuffle volume, hash-build vs probe
// breakdowns (Fig. 1), and recovery overheads (Fig. 12).
#pragma once

#include <cstdint>
#include <string>

namespace idf {

struct TaskMetrics {
  double compute_seconds = 0;      // measured real CPU work of the task body
  uint64_t shuffle_bytes_read = 0;
  uint64_t shuffle_bytes_written = 0;
  uint64_t rows_read = 0;
  uint64_t rows_written = 0;
  uint64_t index_probes = 0;
  double hash_build_seconds = 0;   // time spent (re)building hash tables
  double recovery_seconds = 0;     // lineage recomputation triggered by a task

  void MergeFrom(const TaskMetrics& other) {
    compute_seconds += other.compute_seconds;
    shuffle_bytes_read += other.shuffle_bytes_read;
    shuffle_bytes_written += other.shuffle_bytes_written;
    rows_read += other.rows_read;
    rows_written += other.rows_written;
    index_probes += other.index_probes;
    hash_build_seconds += other.hash_build_seconds;
    recovery_seconds += other.recovery_seconds;
  }
};

struct StageMetrics {
  TaskMetrics totals;          // summed across tasks
  double real_seconds = 0;     // actual wall time on this host (serialized)
  double simulated_seconds = 0;  // DES makespan on the configured cluster
  double network_seconds = 0;  // portion of the makespan spent in transfers
  uint32_t num_tasks = 0;
  uint32_t recovered_tasks = 0;  // tasks that triggered lineage recompute
};

struct QueryMetrics {
  TaskMetrics totals;
  double real_seconds = 0;
  double simulated_seconds = 0;
  double network_seconds = 0;
  uint32_t num_stages = 0;
  uint32_t recovered_tasks = 0;

  void MergeStage(const StageMetrics& stage) {
    totals.MergeFrom(stage.totals);
    real_seconds += stage.real_seconds;
    simulated_seconds += stage.simulated_seconds;
    network_seconds += stage.network_seconds;
    recovered_tasks += stage.recovered_tasks;
    ++num_stages;
  }
};

}  // namespace idf
