// Simulated cluster topology.
//
// The paper evaluates on a 16-core dual-socket private cluster (Table I) and
// EC2 i3.xlarge/i3.8xlarge instances, varying workers (2..32), executors per
// worker, cores per executor, and NUMA pinning (Fig. 4, Fig. 6). This host
// has one CPU core, so the cluster is *modeled*: tasks execute for real (and
// are timed), while their placement onto workers/executors/cores and all
// network transfers are simulated by a discrete-event scheduler
// (engine/des.h). See DESIGN.md "Key substitutions".
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"

namespace idf {

/// Globally unique executor index within a cluster: e = worker * epw + slot.
using ExecutorId = uint32_t;
constexpr ExecutorId kAnyExecutor = ~0u;

struct NetworkConfig {
  double latency_s = 100e-6;  // per-transfer startup cost (one RTT-ish)
  /// Cross-worker NIC bandwidth. Default ≈ 10 Gbps (Table I, EC2).
  double bandwidth_bytes_per_s = 1.25e9;
  /// Same-worker, cross-executor transfer bandwidth (shared memory / loopback).
  double intra_worker_bandwidth = 12.5e9;
};

struct ClusterConfig {
  uint32_t num_workers = 1;
  uint32_t executors_per_worker = 1;
  uint32_t cores_per_executor = 4;
  uint32_t sockets_per_worker = 2;
  uint32_t cores_per_worker = 16;  // Table I: dual-socket, 8 cores/socket

  /// Host threads the cluster may use to run a stage's tasks for real
  /// (engine/scheduler.h). 0 = auto: min(total_executors, host cores).
  /// 1 = sequential. The IDF_PARALLEL environment variable overrides this
  /// (IDF_PARALLEL=0 forces single-threaded debugging).
  uint32_t scheduler_threads = 0;

  /// Whether executors are pinned to a NUMA domain (numactl in §IV-B).
  bool numa_pinned = false;

  /// Fractional slowdown of memory-bound work on remote-socket accesses.
  /// Fig. 4 shows executors spanning sockets lose tens of percent.
  double numa_remote_penalty = 0.35;

  /// Process-wide budget for governed row-batch memory (src/mem/governor.h).
  /// 0 = unbounded (the paper's all-in-memory configuration). When exceeded,
  /// sealed row batches spill to `spill_dir` and fault back in on access.
  /// The IDF_MEMORY_BUDGET environment variable ("256m", "2g", plain bytes)
  /// overrides this.
  uint64_t memory_budget_bytes = 0;

  /// Spill directory for evicted batches (an idf-spill-<pid> subdirectory
  /// is appended, so concurrent processes may share it). Empty =
  /// <tmp>/idf-spill-<pid>. The IDF_SPILL_DIR environment variable
  /// overrides this.
  std::string spill_dir;

  NetworkConfig network;

  uint32_t total_executors() const { return num_workers * executors_per_worker; }
  uint32_t total_cores() const {
    return total_executors() * cores_per_executor;
  }
  uint32_t WorkerOf(ExecutorId e) const { return e / executors_per_worker; }

  /// Effective compute-time multiplier from NUMA placement. An executor
  /// whose cores fit inside one socket and is pinned pays nothing; unpinned
  /// executors pay for the expected fraction of remote accesses; executors
  /// wider than a socket necessarily span domains.
  double NumaFactor() const {
    const uint32_t cores_per_socket =
        std::max(1u, cores_per_worker / std::max(1u, sockets_per_worker));
    if (cores_per_executor > cores_per_socket) {
      // Spans sockets: roughly half of accesses land remote.
      return 1.0 + numa_remote_penalty;
    }
    if (!numa_pinned && sockets_per_worker > 1) {
      // OS may place memory/threads across domains; expected partial penalty.
      return 1.0 + numa_remote_penalty * 0.5;
    }
    return 1.0;
  }

  Status Validate() const {
    if (num_workers == 0 || executors_per_worker == 0 ||
        cores_per_executor == 0) {
      return Status::InvalidArgument("cluster dimensions must be positive");
    }
    if (executors_per_worker * cores_per_executor > cores_per_worker) {
      return Status::InvalidArgument(
          "executors oversubscribe worker cores: " +
          std::to_string(executors_per_worker * cores_per_executor) + " > " +
          std::to_string(cores_per_worker));
    }
    return Status::OK();
  }

  std::string ToString() const {
    return std::to_string(num_workers) + " workers x " +
           std::to_string(executors_per_worker) + " executors x " +
           std::to_string(cores_per_executor) + " cores" +
           (numa_pinned ? " (NUMA-pinned)" : "");
  }
};

}  // namespace idf
