#include "engine/scheduler.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

namespace idf {

uint32_t ResolveSchedulerThreads(const ClusterConfig& config) {
  if (const char* env = std::getenv("IDF_PARALLEL");
      env != nullptr && env[0] != '\0') {
    const long v = std::strtol(env, nullptr, 10);
    return v <= 1 ? 1u : static_cast<uint32_t>(v);
  }
  if (config.scheduler_threads > 0) return config.scheduler_threads;
  const uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  return std::max(1u, std::min(config.total_executors(), hw));
}

TaskLanes::TaskLanes(const std::vector<uint32_t>& lane_of, size_t num_lanes,
                     const std::vector<uint32_t>& dispatch_order)
    : lanes_(num_lanes) {
  if (dispatch_order.empty()) {
    for (uint32_t i = 0; i < lane_of.size(); ++i) {
      lanes_[lane_of[i]].push_back(i);
    }
    return;
  }
  for (uint32_t i : dispatch_order) {
    lanes_[lane_of[i]].push_back(i);
  }
}

bool TaskLanes::Pop(size_t home, uint32_t* task_index, bool* stolen,
                    uint32_t* next_in_lane) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (home < lanes_.size() && !lanes_[home].empty()) {
    *task_index = lanes_[home].front();
    lanes_[home].pop_front();
    *stolen = false;
    if (next_in_lane != nullptr) {
      *next_in_lane = lanes_[home].empty() ? kNoTask : lanes_[home].front();
    }
    return true;
  }
  // Steal from the most backlogged lane — evens out skew and keeps the
  // victim's remaining tasks local to its own worker.
  size_t victim = lanes_.size();
  for (size_t l = 0; l < lanes_.size(); ++l) {
    if (lanes_[l].empty()) continue;
    if (victim == lanes_.size() || lanes_[l].size() > lanes_[victim].size()) {
      victim = l;
    }
  }
  if (victim == lanes_.size()) return false;
  *task_index = lanes_[victim].front();
  lanes_[victim].pop_front();
  *stolen = true;
  if (next_in_lane != nullptr) {
    *next_in_lane = lanes_[victim].empty() ? kNoTask : lanes_[victim].front();
  }
  return true;
}

}  // namespace idf
