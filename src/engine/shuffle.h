// Hash-partitioned shuffle — the data-movement primitive behind index
// creation, appends, and indexed joins (§III-C "Scheduling Physical
// Operators": rows are hash-partitioned on the indexed key and shuffled to
// their indexed partitions), as well as the vanilla shuffled-hash and
// sort-merge joins.
//
// Two transports share one block store (docs/SHUFFLE.md):
//  - barrier: map tasks publish their complete per-reducer buffers with
//    PutMapOutput; reduce tasks fetch everything at once with
//    FetchReduceInputs after the map stage's barrier.
//  - streaming: map tasks push buffers as they seal (PushMapOutput) into
//    per-reduce-partition channels; reduce tasks pull them concurrently, in
//    (map task id, seal sequence) order, through a ReduceInputStream. A
//    byte-bounded backpressure window keeps routed-but-unconsumed bytes from
//    blowing the memory governor's budget, with one carve-out — the smallest
//    unfinished map task is always admitted — that makes the window
//    deadlock-free (the map every consumer could be waiting on can never
//    block on the window itself).
//
// Byte counts and source executors feed the network model either way.
#pragma once

#include <cstdint>
#include <cstring>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "engine/topology.h"

namespace idf {

/// Deterministic hash partitioner (§III-C: "hash partitioning ensures better
/// load balancing when the key ranges are not known a-priori"). Partitioning
/// must be stable across runs: it is part of the lineage.
inline uint32_t HashPartition(uint64_t key_code, uint32_t num_partitions) {
  IDF_CHECK(num_partitions > 0);
  return static_cast<uint32_t>(Mix64(key_code) % num_partitions);
}

/// True when the streaming shuffle pipeline is enabled (IDF_SHUFFLE_PIPELINE;
/// default on, "0" selects the classic two-stage barrier path). Re-read on
/// every shuffle so tests and benches can A/B without a new process.
bool ShufflePipelineEnabled();

/// Backpressure window for streaming shuffles: IDF_SHUFFLE_WINDOW when set
/// (mem::ParseByteSize syntax; 0 disables enforcement), else a quarter of the
/// memory governor's budget capped at 64 MB, else 64 MB.
uint64_t ShuffleWindowBytes();

/// The Status a streaming producer/consumer unblocks with when the shuffle
/// was aborted (a peer task failed and the stage is being cancelled). Merge
/// logic prefers the root-cause failure over these secondary statuses.
inline Status ShuffleAbortedStatus() {
  return Status::Unavailable("shuffle aborted");
}
inline bool IsShuffleAborted(const Status& status) {
  return !status.ok() && status.message() == "shuffle aborted";
}

/// One map task's output for one reduce partition: concatenated encoded rows.
struct ShuffleBuffer {
  std::vector<uint8_t> bytes;
  uint32_t num_rows = 0;
  ExecutorId source = kAnyExecutor;

  void Reserve(size_t capacity) { bytes.reserve(capacity); }

  void AppendRow(const uint8_t* row, uint32_t len) {
    bytes.insert(bytes.end(), row, row + len);
    ++num_rows;
  }
};

/// Iterates the encoded rows in a shuffle buffer. Rows are self-delimiting
/// (their first 4 bytes hold the row size).
class ShuffleBufferReader {
 public:
  explicit ShuffleBufferReader(const ShuffleBuffer& buffer)
      : buffer_(buffer) {}

  bool HasNext() const { return cursor_ < buffer_.bytes.size(); }

  /// Returns a pointer to the next encoded row and advances.
  const uint8_t* Next() {
    IDF_CHECK(HasNext());
    const uint8_t* row = buffer_.bytes.data() + cursor_;
    uint32_t size;
    std::memcpy(&size, row, sizeof(size));
    IDF_CHECK_MSG(size >= 16 && cursor_ + size <= buffer_.bytes.size(),
                  "corrupt shuffle buffer");
    cursor_ += size;
    return row;
  }

 private:
  const ShuffleBuffer& buffer_;
  size_t cursor_ = 0;
};

class ShuffleService;

/// Ordered stream of routed buffers a reduce-side consumer drains — the
/// transport-agnostic face of both shuffle modes. Buffers arrive in
/// (map task id, seal sequence) order, so the concatenated byte stream a
/// consumer sees is identical to the barrier path's FetchReduceInputs
/// concatenation: insert order, cTrie state, and COW batch counts stay
/// byte-identical across modes.
class RoutedBufferStream {
 public:
  virtual ~RoutedBufferStream() = default;

  /// Next routed buffer; nullptr at end of stream. Streaming implementations
  /// block until a buffer arrives (or the shuffle aborts).
  virtual Result<std::shared_ptr<const ShuffleBuffer>> Next() = 0;
};

/// Barrier-mode stream: a fetched input vector, replayed in order.
class BarrierReduceInput final : public RoutedBufferStream {
 public:
  explicit BarrierReduceInput(
      std::vector<std::shared_ptr<const ShuffleBuffer>> buffers)
      : buffers_(std::move(buffers)) {}

  Result<std::shared_ptr<const ShuffleBuffer>> Next() override {
    if (index_ >= buffers_.size()) {
      return std::shared_ptr<const ShuffleBuffer>();
    }
    return buffers_[index_++];
  }

 private:
  std::vector<std::shared_ptr<const ShuffleBuffer>> buffers_;
  size_t index_ = 0;
};

/// Streaming-mode stream: the pull side of one reduce partition's channel.
/// `idle` runs whenever the channel is momentarily dry — the work-stealing
/// hook (Cluster::TryHelpPipelinedMapTask) that lets a starved consumer lane
/// execute a backlogged map peer's pending FetchChunk/encode work instead of
/// sleeping; return true after doing work, false to block on the channel.
/// `on_map_read` fires once per map task whose contribution to this
/// partition completed with > 0 bytes — aggregated exactly like the barrier
/// path's one AddRead per non-empty (map, reduce) buffer, so the DES read
/// list is identical.
class ReduceInputStream final : public RoutedBufferStream {
 public:
  ReduceInputStream(ShuffleService& service, uint64_t shuffle,
                    uint32_t reduce_part, std::function<bool()> idle,
                    std::function<void(ExecutorId, uint64_t)> on_map_read)
      : service_(&service),
        shuffle_(shuffle),
        reduce_part_(reduce_part),
        idle_(std::move(idle)),
        on_map_read_(std::move(on_map_read)) {}

  Result<std::shared_ptr<const ShuffleBuffer>> Next() override;

 private:
  ShuffleService* service_;
  uint64_t shuffle_;
  uint32_t reduce_part_;
  std::function<bool()> idle_;
  std::function<void(ExecutorId, uint64_t)> on_map_read_;
  uint32_t map_cursor_ = 0;       // map id currently being drained
  uint64_t map_bytes_ = 0;        // bytes delivered from map_cursor_ so far
  ExecutorId map_source_ = kAnyExecutor;
};

/// Map-side routed-row writer shared by both transports. Rows append into
/// per-target buffers whose backing vectors are pre-reserved from a
/// routed-rows hint (first encoded row sizes the estimate), so the buffers
/// stop reallocating one row at a time. In streaming mode a buffer is pushed
/// into its channel the moment it reaches the seal threshold — that is what
/// overlaps encode with transfer and insert — and Finish() pushes the
/// remainders and declares the map task done. In barrier mode everything is
/// published at Finish() via PutMapOutput, exactly like the classic path.
class ShuffleWriter {
 public:
  /// Buffers seal (and stream) at this size; small enough that a map task's
  /// first sealed buffer reaches its consumer early, large enough that
  /// channel overhead is noise.
  static constexpr size_t kSealThresholdBytes = 256 * 1024;

  ShuffleWriter(ShuffleService& service, uint64_t shuffle, uint32_t map_task,
                uint32_t num_targets, ExecutorId source, bool streaming,
                uint64_t hint_rows)
      : service_(&service),
        shuffle_(shuffle),
        map_task_(map_task),
        source_(source),
        streaming_(streaming),
        hint_rows_(hint_rows),
        buffers_(num_targets) {}

  /// Routes one encoded row to `target`. Returns ShuffleAbortedStatus() when
  /// a streaming push found the shuffle cancelled.
  Status Append(uint32_t target, const uint8_t* row, uint32_t len);

  /// Publishes the remaining buffers; streaming mode then marks this map
  /// task finished so consumers can advance past it.
  Status Finish();

  /// Total routed bytes (metrics: shuffle_bytes_written). Identical to the
  /// sum of all published buffer sizes.
  uint64_t bytes_written() const { return bytes_written_; }

 private:
  ShuffleService* service_;
  uint64_t shuffle_;
  uint32_t map_task_;
  ExecutorId source_;
  bool streaming_;
  uint64_t hint_rows_;
  uint64_t bytes_written_ = 0;
  size_t reserve_per_target_ = 0;  // sized off the first routed row
  bool finished_ = false;
  std::vector<ShuffleBuffer> buffers_;
};

/// Cluster-wide shuffle block store plus streaming channels. Thread-safe.
class ShuffleService {
 public:
  /// Registers a new shuffle; returns its id.
  uint64_t NewShuffle(uint32_t num_map_tasks, uint32_t num_reduce_tasks) {
    std::lock_guard<std::mutex> lock(mutex_);
    const uint64_t id = next_id_++;
    auto& s = shuffles_[id];
    s.num_map = num_map_tasks;
    s.num_reduce = num_reduce_tasks;
    s.outputs.resize(static_cast<size_t>(num_map_tasks) * num_reduce_tasks);
    return id;
  }

  void PutMapOutput(uint64_t shuffle, uint32_t map_task, uint32_t reduce_part,
                    ShuffleBuffer buffer) {
    std::lock_guard<std::mutex> lock(mutex_);
    State& s = GetState(shuffle);
    IDF_CHECK(map_task < s.num_map && reduce_part < s.num_reduce);
    s.outputs[static_cast<size_t>(map_task) * s.num_reduce + reduce_part] =
        std::make_shared<ShuffleBuffer>(std::move(buffer));
  }

  /// All map outputs destined for one reduce partition (missing/empty map
  /// outputs are skipped).
  std::vector<std::shared_ptr<const ShuffleBuffer>> FetchReduceInputs(
      uint64_t shuffle, uint32_t reduce_part) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const State& s = GetState(shuffle);
    IDF_CHECK(reduce_part < s.num_reduce);
    std::vector<std::shared_ptr<const ShuffleBuffer>> inputs;
    for (uint32_t m = 0; m < s.num_map; ++m) {
      const auto& buf =
          s.outputs[static_cast<size_t>(m) * s.num_reduce + reduce_part];
      if (buf != nullptr && buf->num_rows > 0) inputs.push_back(buf);
    }
    return inputs;
  }

  uint64_t BytesForReduce(uint64_t shuffle, uint32_t reduce_part) const {
    uint64_t total = 0;
    for (const auto& buf : FetchReduceInputs(shuffle, reduce_part)) {
      total += buf->bytes.size();
    }
    return total;
  }

  uint64_t TotalBytes(uint64_t shuffle) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const State& s = GetState(shuffle);
    uint64_t total = 0;
    for (const auto& buf : s.outputs) {
      if (buf != nullptr) total += buf->bytes.size();
    }
    return total;
  }

  /// Frees a completed shuffle's buffers.
  void Release(uint64_t shuffle) {
    std::lock_guard<std::mutex> lock(mutex_);
    shuffles_.erase(shuffle);
  }

  // ---- streaming channels (docs/SHUFFLE.md) -----------------------------

  /// Arms the streaming transport for `shuffle`: one ordered channel per
  /// reduce partition. `window_bytes` bounds pushed-but-undelivered bytes;
  /// enforcement only engages when `enforce_window` (the fused parallel
  /// path — a single-threaded run would deadlock against itself) and the
  /// window is non-zero.
  void StartStreaming(uint64_t shuffle, uint64_t window_bytes,
                      bool enforce_window);

  /// Streaming push of one sealed buffer. Blocks while the window is full,
  /// except for the smallest unfinished map task (always admitted — the
  /// liveness carve-out). Returns false when the shuffle was aborted; the
  /// buffer is then dropped and the caller should unwind with
  /// ShuffleAbortedStatus().
  bool PushMapOutput(uint64_t shuffle, uint32_t map_task, uint32_t reduce_part,
                     ShuffleBuffer buffer);

  /// Marks a map task complete: consumers may advance past it, and the
  /// window's always-admit carve-out moves to the next unfinished map.
  void MapTaskFinished(uint64_t shuffle, uint32_t map_task);

  /// Cancels a streaming shuffle: every blocked producer and consumer wakes
  /// and unwinds with ShuffleAbortedStatus(). Idempotent.
  void AbortStreaming(uint64_t shuffle);

  /// Peak pushed-but-undelivered bytes observed on a streaming shuffle.
  uint64_t InflightPeakBytes(uint64_t shuffle) const;

 private:
  friend class ReduceInputStream;

  /// One reduce partition's ordered channel.
  struct Channel {
    std::condition_variable cv;
    // per_map[m]: buffers pushed by map task m, in seal-sequence order.
    std::vector<std::deque<std::shared_ptr<ShuffleBuffer>>> per_map;
  };

  struct State {
    uint32_t num_map = 0;
    uint32_t num_reduce = 0;
    // [map * num_reduce + reduce] — barrier transport.
    std::vector<std::shared_ptr<ShuffleBuffer>> outputs;
    // Streaming transport.
    bool streaming = false;
    bool enforce = false;
    bool aborted = false;
    uint64_t window = 0;
    uint64_t inflight = 0;       // pushed - delivered bytes
    uint64_t inflight_peak = 0;
    uint32_t min_unfinished = 0; // smallest map id not yet finished
    std::vector<char> map_finished;
    std::condition_variable push_cv;  // producers blocked on the window
    std::vector<std::unique_ptr<Channel>> channels;
  };

  /// Delivers the next buffer for `reduce_part` in (map, seq) order; the
  /// cursor state lives in the caller's ReduceInputStream. nullptr at end.
  Result<std::shared_ptr<const ShuffleBuffer>> PullNext(
      uint64_t shuffle, uint32_t reduce_part, uint32_t* map_cursor,
      uint64_t* map_bytes, ExecutorId* map_source,
      const std::function<bool()>& idle,
      const std::function<void(ExecutorId, uint64_t)>& on_map_read);

  const State& GetState(uint64_t id) const {
    auto it = shuffles_.find(id);
    IDF_CHECK_MSG(it != shuffles_.end(), "unknown shuffle id");
    return it->second;
  }
  State& GetState(uint64_t id) {
    auto it = shuffles_.find(id);
    IDF_CHECK_MSG(it != shuffles_.end(), "unknown shuffle id");
    return it->second;
  }

  mutable std::mutex mutex_;
  std::map<uint64_t, State> shuffles_;
  uint64_t next_id_ = 1;
};

}  // namespace idf
