// Hash-partitioned shuffle — the data-movement primitive behind index
// creation, appends, and indexed joins (§III-C "Scheduling Physical
// Operators": rows are hash-partitioned on the indexed key and shuffled to
// their indexed partitions), as well as the vanilla shuffled-hash and
// sort-merge joins.
//
// Map tasks serialize rows into per-reducer buffers; reduce tasks fetch every
// map output for their partition. Byte counts and source executors feed the
// network model.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "engine/topology.h"

namespace idf {

/// Deterministic hash partitioner (§III-C: "hash partitioning ensures better
/// load balancing when the key ranges are not known a-priori"). Partitioning
/// must be stable across runs: it is part of the lineage.
inline uint32_t HashPartition(uint64_t key_code, uint32_t num_partitions) {
  IDF_CHECK(num_partitions > 0);
  return static_cast<uint32_t>(Mix64(key_code) % num_partitions);
}

/// One map task's output for one reduce partition: concatenated encoded rows.
struct ShuffleBuffer {
  std::vector<uint8_t> bytes;
  uint32_t num_rows = 0;
  ExecutorId source = kAnyExecutor;

  void AppendRow(const uint8_t* row, uint32_t len) {
    bytes.insert(bytes.end(), row, row + len);
    ++num_rows;
  }
};

/// Iterates the encoded rows in a shuffle buffer. Rows are self-delimiting
/// (their first 4 bytes hold the row size).
class ShuffleBufferReader {
 public:
  explicit ShuffleBufferReader(const ShuffleBuffer& buffer)
      : buffer_(buffer) {}

  bool HasNext() const { return cursor_ < buffer_.bytes.size(); }

  /// Returns a pointer to the next encoded row and advances.
  const uint8_t* Next() {
    IDF_CHECK(HasNext());
    const uint8_t* row = buffer_.bytes.data() + cursor_;
    uint32_t size;
    std::memcpy(&size, row, sizeof(size));
    IDF_CHECK_MSG(size >= 16 && cursor_ + size <= buffer_.bytes.size(),
                  "corrupt shuffle buffer");
    cursor_ += size;
    return row;
  }

 private:
  const ShuffleBuffer& buffer_;
  size_t cursor_ = 0;
};

/// Cluster-wide shuffle block store. Thread-safe.
class ShuffleService {
 public:
  /// Registers a new shuffle; returns its id.
  uint64_t NewShuffle(uint32_t num_map_tasks, uint32_t num_reduce_tasks) {
    std::lock_guard<std::mutex> lock(mutex_);
    const uint64_t id = next_id_++;
    auto& s = shuffles_[id];
    s.num_map = num_map_tasks;
    s.num_reduce = num_reduce_tasks;
    s.outputs.resize(static_cast<size_t>(num_map_tasks) * num_reduce_tasks);
    return id;
  }

  void PutMapOutput(uint64_t shuffle, uint32_t map_task, uint32_t reduce_part,
                    ShuffleBuffer buffer) {
    std::lock_guard<std::mutex> lock(mutex_);
    State& s = GetState(shuffle);
    IDF_CHECK(map_task < s.num_map && reduce_part < s.num_reduce);
    s.outputs[static_cast<size_t>(map_task) * s.num_reduce + reduce_part] =
        std::make_shared<ShuffleBuffer>(std::move(buffer));
  }

  /// All map outputs destined for one reduce partition (missing/empty map
  /// outputs are skipped).
  std::vector<std::shared_ptr<const ShuffleBuffer>> FetchReduceInputs(
      uint64_t shuffle, uint32_t reduce_part) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const State& s = GetState(shuffle);
    IDF_CHECK(reduce_part < s.num_reduce);
    std::vector<std::shared_ptr<const ShuffleBuffer>> inputs;
    for (uint32_t m = 0; m < s.num_map; ++m) {
      const auto& buf =
          s.outputs[static_cast<size_t>(m) * s.num_reduce + reduce_part];
      if (buf != nullptr && buf->num_rows > 0) inputs.push_back(buf);
    }
    return inputs;
  }

  uint64_t BytesForReduce(uint64_t shuffle, uint32_t reduce_part) const {
    uint64_t total = 0;
    for (const auto& buf : FetchReduceInputs(shuffle, reduce_part)) {
      total += buf->bytes.size();
    }
    return total;
  }

  uint64_t TotalBytes(uint64_t shuffle) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const State& s = GetState(shuffle);
    uint64_t total = 0;
    for (const auto& buf : s.outputs) {
      if (buf != nullptr) total += buf->bytes.size();
    }
    return total;
  }

  /// Frees a completed shuffle's buffers.
  void Release(uint64_t shuffle) {
    std::lock_guard<std::mutex> lock(mutex_);
    shuffles_.erase(shuffle);
  }

 private:
  struct State {
    uint32_t num_map = 0;
    uint32_t num_reduce = 0;
    // [map * num_reduce + reduce]
    std::vector<std::shared_ptr<ShuffleBuffer>> outputs;
  };

  const State& GetState(uint64_t id) const {
    auto it = shuffles_.find(id);
    IDF_CHECK_MSG(it != shuffles_.end(), "unknown shuffle id");
    return it->second;
  }
  State& GetState(uint64_t id) {
    auto it = shuffles_.find(id);
    IDF_CHECK_MSG(it != shuffles_.end(), "unknown shuffle id");
    return it->second;
  }

  mutable std::mutex mutex_;
  std::map<uint64_t, State> shuffles_;
  uint64_t next_id_ = 1;
};

}  // namespace idf
