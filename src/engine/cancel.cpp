#include "engine/cancel.h"

#include <chrono>

namespace idf {

namespace {
thread_local QueryControl* t_query_control = nullptr;
}  // namespace

int64_t QueryControl::NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status QueryControl::Check() const {
  if (cancel_requested()) {
    return Status::Cancelled("query cancelled");
  }
  const int64_t deadline = deadline_micros();
  if (deadline != 0 && NowMicros() >= deadline) {
    return Status::DeadlineExceeded("query deadline expired");
  }
  return Status::OK();
}

QueryControl* CurrentQueryControl() { return t_query_control; }

ScopedQueryControl::ScopedQueryControl(QueryControl* control)
    : previous_(t_query_control) {
  t_query_control = control;
}

ScopedQueryControl::~ScopedQueryControl() { t_query_control = previous_; }

}  // namespace idf
