#include "engine/shuffle.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "mem/governor.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "testing/chaos.h"

namespace idf {
namespace {

/// Cached registry handles — registry lookups take a mutex; pushes happen
/// per sealed buffer on the map hot path.
struct ShuffleMetrics {
  obs::Counter& pushed_bytes;
  obs::Histogram& stall_seconds;
  obs::Gauge& inflight_peak_bytes;

  static ShuffleMetrics& Get() {
    static ShuffleMetrics m{
        obs::Registry::Global().GetCounter("engine.shuffle.pushed_bytes"),
        obs::Registry::Global().GetHistogram("engine.shuffle.stall_seconds"),
        obs::Registry::Global().GetGauge("engine.shuffle.inflight_peak_bytes")};
    return m;
  }
};

uint64_t ElapsedMicros(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

void RecordStall(uint64_t micros, uint64_t task, bool drain_side) {
  ShuffleMetrics::Get().stall_seconds.Observe(
      static_cast<double>(micros) / 1e6);
  obs::FlightRecorder::Global().Record(obs::EventType::kShuffleStall,
                                       /*name_id=*/0, micros, task,
                                       drain_side ? 1 : 0);
}

}  // namespace

bool ShufflePipelineEnabled() {
  // Re-read each call: fig benches and the identity tests flip this between
  // runs inside one process.
  if (const char* env = std::getenv("IDF_SHUFFLE_PIPELINE")) {
    return !(env[0] == '0' && env[1] == '\0');
  }
  return true;
}

uint64_t ShuffleWindowBytes() {
  constexpr uint64_t kDefaultWindow = 64ull << 20;
  if (const char* env = std::getenv("IDF_SHUFFLE_WINDOW")) {
    auto parsed = mem::ParseByteSize(env);
    if (parsed.ok()) return parsed.value();
  }
  if (mem::MemoryGovernor::Engaged()) {
    const uint64_t budget = mem::MemoryGovernor::Global().budget_bytes();
    if (budget > 0) return std::min(kDefaultWindow, budget / 4);
  }
  return kDefaultWindow;
}

// ---- ShuffleWriter --------------------------------------------------------

Status ShuffleWriter::Append(uint32_t target, const uint8_t* row,
                             uint32_t len) {
  IDF_CHECK(!finished_ && target < buffers_.size());
  if (reserve_per_target_ == 0) {
    // First routed row sizes the estimate: hint_rows spread evenly over the
    // targets, at this row's width, capped at the seal threshold (streaming
    // buffers never grow past it anyway).
    const uint64_t per_target_rows = std::max<uint64_t>(
        1, (hint_rows_ + buffers_.size() - 1) / buffers_.size());
    reserve_per_target_ = static_cast<size_t>(
        std::min<uint64_t>(kSealThresholdBytes, per_target_rows * len));
  }
  ShuffleBuffer& buf = buffers_[target];
  if (buf.bytes.capacity() == 0) buf.Reserve(reserve_per_target_);
  buf.AppendRow(row, len);
  bytes_written_ += len;
  if (streaming_ && buf.bytes.size() >= kSealThresholdBytes) {
    ShuffleBuffer sealed = std::move(buf);
    sealed.source = source_;
    buf = ShuffleBuffer{};
    buf.Reserve(reserve_per_target_);
    if (!service_->PushMapOutput(shuffle_, map_task_, target,
                                 std::move(sealed))) {
      return ShuffleAbortedStatus();
    }
  }
  return Status::OK();
}

Status ShuffleWriter::Finish() {
  if (finished_) return Status::OK();
  finished_ = true;
  Status result = Status::OK();
  for (uint32_t t = 0; t < buffers_.size(); ++t) {
    ShuffleBuffer& buf = buffers_[t];
    if (buf.num_rows == 0) continue;
    buf.source = source_;
    if (streaming_) {
      if (result.ok() &&
          !service_->PushMapOutput(shuffle_, map_task_, t, std::move(buf))) {
        result = ShuffleAbortedStatus();
      }
    } else {
      service_->PutMapOutput(shuffle_, map_task_, t, std::move(buf));
    }
  }
  // Declare completion even when aborting: consumers blocked on this map's
  // channel must be able to advance (abort wakes them too — belt and
  // braces for the window's min-unfinished carve-out).
  if (streaming_) service_->MapTaskFinished(shuffle_, map_task_);
  return result;
}

// ---- streaming channels ---------------------------------------------------

void ShuffleService::StartStreaming(uint64_t shuffle, uint64_t window_bytes,
                                    bool enforce_window) {
  std::lock_guard<std::mutex> lock(mutex_);
  State& s = GetState(shuffle);
  s.streaming = true;
  s.enforce = enforce_window && window_bytes > 0;
  s.aborted = false;
  s.window = window_bytes;
  s.inflight = 0;
  s.inflight_peak = 0;
  s.min_unfinished = 0;
  s.map_finished.assign(s.num_map, 0);
  s.channels.clear();
  s.channels.reserve(s.num_reduce);
  for (uint32_t r = 0; r < s.num_reduce; ++r) {
    auto channel = std::make_unique<Channel>();
    channel->per_map.resize(s.num_map);
    s.channels.push_back(std::move(channel));
  }
}

bool ShuffleService::PushMapOutput(uint64_t shuffle, uint32_t map_task,
                                   uint32_t reduce_part,
                                   ShuffleBuffer buffer) {
  // Chaos push site: delay the seal-push before taking the service lock
  // (the consumer side observes a late contribution, not a held lock), or
  // abort the whole stream mid-flight — every producer and consumer then
  // unwinds with ShuffleAbortedStatus, the retryable path the differential
  // gate accepts.
  if (chaos::ChaosEngine::Active()) {
    const chaos::ShuffleAction action =
        chaos::ChaosEngine::Global().OnShufflePush(shuffle, map_task,
                                                   reduce_part);
    if (action.delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(action.delay_us));
    }
    if (action.abort) AbortStreaming(shuffle);
  }
  const uint64_t size = buffer.bytes.size();
  auto buf = std::make_shared<ShuffleBuffer>(std::move(buffer));
  uint64_t stall_us = 0;
  uint64_t peak = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    State& s = GetState(shuffle);
    IDF_CHECK_MSG(s.streaming, "streaming push on a barrier shuffle");
    IDF_CHECK(map_task < s.num_map && reduce_part < s.num_reduce);
    // Window admission. The smallest unfinished map task is always admitted:
    // it is the map every ordered consumer may be blocked on, so stalling it
    // against a full window could deadlock; admitting it bounds peak
    // inflight at window + one map task's output.
    const auto admitted = [&] {
      return s.aborted || !s.enforce || map_task == s.min_unfinished ||
             s.inflight + size <= s.window;
    };
    if (!admitted()) {
      const auto start = std::chrono::steady_clock::now();
      s.push_cv.wait(lock, admitted);
      stall_us = ElapsedMicros(start);
    }
    if (s.aborted) {
      lock.unlock();
      if (stall_us > 0) RecordStall(stall_us, map_task, /*drain_side=*/false);
      return false;
    }
    s.inflight += size;
    s.inflight_peak = std::max(s.inflight_peak, s.inflight);
    peak = s.inflight_peak;
    s.channels[reduce_part]->per_map[map_task].push_back(std::move(buf));
    s.channels[reduce_part]->cv.notify_all();
  }
  if (stall_us > 0) RecordStall(stall_us, map_task, /*drain_side=*/false);
  auto& metrics = ShuffleMetrics::Get();
  metrics.pushed_bytes.Add(size);
  if (static_cast<double>(peak) > metrics.inflight_peak_bytes.value()) {
    metrics.inflight_peak_bytes.Set(static_cast<double>(peak));
  }
  obs::FlightRecorder::Global().Record(obs::EventType::kShufflePush,
                                       /*name_id=*/0, size, map_task,
                                       reduce_part);
  return true;
}

void ShuffleService::MapTaskFinished(uint64_t shuffle, uint32_t map_task) {
  std::lock_guard<std::mutex> lock(mutex_);
  State& s = GetState(shuffle);
  if (!s.streaming) return;
  IDF_CHECK(map_task < s.num_map);
  s.map_finished[map_task] = 1;
  while (s.min_unfinished < s.num_map && s.map_finished[s.min_unfinished]) {
    ++s.min_unfinished;
  }
  // The always-admit carve-out moved: blocked producers re-evaluate, and
  // consumers waiting on this map's channel can now advance past it.
  s.push_cv.notify_all();
  for (auto& channel : s.channels) channel->cv.notify_all();
}

void ShuffleService::AbortStreaming(uint64_t shuffle) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = shuffles_.find(shuffle);
  if (it == shuffles_.end()) return;  // already released
  State& s = it->second;
  if (!s.streaming || s.aborted) return;
  s.aborted = true;
  s.push_cv.notify_all();
  for (auto& channel : s.channels) channel->cv.notify_all();
}

uint64_t ShuffleService::InflightPeakBytes(uint64_t shuffle) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return GetState(shuffle).inflight_peak;
}

Result<std::shared_ptr<const ShuffleBuffer>> ShuffleService::PullNext(
    uint64_t shuffle, uint32_t reduce_part, uint32_t* map_cursor,
    uint64_t* map_bytes, ExecutorId* map_source,
    const std::function<bool()>& idle,
    const std::function<void(ExecutorId, uint64_t)>& on_map_read) {
  // Chaos pull site: stall this consumer's channel before it takes the
  // lock, shearing the drain order against the producers.
  if (chaos::ChaosEngine::Active()) {
    const uint32_t delay_us =
        chaos::ChaosEngine::Global().OnShufflePullDelayUs(shuffle,
                                                          reduce_part);
    if (delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    }
  }
  for (;;) {
    std::shared_ptr<ShuffleBuffer> delivered;
    ExecutorId read_source = kAnyExecutor;
    uint64_t read_bytes = 0;
    bool fire_read = false;
    bool at_end = false;
    bool must_wait = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      State& s = GetState(shuffle);
      IDF_CHECK_MSG(s.streaming, "streaming pull on a barrier shuffle");
      IDF_CHECK(reduce_part < s.num_reduce);
      Channel& channel = *s.channels[reduce_part];
      for (;;) {
        if (s.aborted) return ShuffleAbortedStatus();
        if (*map_cursor >= s.num_map) {
          at_end = true;
          break;
        }
        auto& queue = channel.per_map[*map_cursor];
        if (!queue.empty()) {
          delivered = std::move(queue.front());
          queue.pop_front();
          *map_bytes += delivered->bytes.size();
          *map_source = delivered->source;
          s.inflight -= delivered->bytes.size();
          s.push_cv.notify_all();
          break;
        }
        if (s.map_finished[*map_cursor]) {
          // Map drained: emit its aggregated network read (matching the
          // barrier path's one AddRead per non-empty map output), then
          // advance. Fired outside the lock.
          if (*map_bytes > 0) {
            fire_read = true;
            read_source = *map_source;
            read_bytes = *map_bytes;
          }
          *map_bytes = 0;
          ++*map_cursor;
          if (fire_read) break;
          continue;
        }
        must_wait = true;
        break;
      }
    }
    if (fire_read) {
      if (on_map_read) on_map_read(read_source, read_bytes);
      continue;
    }
    if (at_end) return std::shared_ptr<const ShuffleBuffer>();
    if (delivered != nullptr) {
      obs::FlightRecorder::Global().Record(obs::EventType::kShuffleDrain,
                                           /*name_id=*/0,
                                           delivered->bytes.size(),
                                           *map_cursor, reduce_part);
      return std::shared_ptr<const ShuffleBuffer>(std::move(delivered));
    }
    IDF_CHECK(must_wait);
    // Channel momentarily dry: steal pending map work instead of sleeping
    // when the hook has any, else block until this map pushes or finishes.
    if (idle && idle()) continue;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      State& s = GetState(shuffle);
      Channel& channel = *s.channels[reduce_part];
      const uint32_t m = *map_cursor;
      if (!s.aborted && m < s.num_map && channel.per_map[m].empty() &&
          !s.map_finished[m]) {
        const auto start = std::chrono::steady_clock::now();
        channel.cv.wait(lock, [&] {
          return s.aborted || !channel.per_map[m].empty() ||
                 s.map_finished[m];
        });
        const uint64_t stall_us = ElapsedMicros(start);
        lock.unlock();
        if (stall_us > 0) RecordStall(stall_us, reduce_part, /*drain_side=*/true);
      }
    }
  }
}

Result<std::shared_ptr<const ShuffleBuffer>> ReduceInputStream::Next() {
  return service_->PullNext(shuffle_, reduce_part_, &map_cursor_, &map_bytes_,
                            &map_source_, idle_, on_map_read_);
}

}  // namespace idf
