// Versioned block storage — the engine's equivalent of Spark's BlockManager.
//
// Consistency (§III-D): every append on an Indexed Batch RDD increments the
// RDD's version; blocks are keyed (rdd, partition, version) and a task that
// requires version v refuses any replica with version < v ("the version
// number aids the scheduler not to send tasks to stale partitions").
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/status.h"
#include "engine/topology.h"

namespace idf {

struct BlockId {
  uint64_t rdd = 0;
  uint32_t partition = 0;
  uint64_t version = 0;

  bool operator<(const BlockId& o) const {
    if (rdd != o.rdd) return rdd < o.rdd;
    if (partition != o.partition) return partition < o.partition;
    return version < o.version;
  }
  bool operator==(const BlockId& o) const {
    return rdd == o.rdd && partition == o.partition && version == o.version;
  }
  std::string ToString() const {
    return "block(rdd=" + std::to_string(rdd) +
           ", part=" + std::to_string(partition) +
           ", v=" + std::to_string(version) + ")";
  }
};

/// Anything a partition can materialize to: a columnar chunk (vanilla cache),
/// an indexed partition, a broadcast hash table, ...
class Block {
 public:
  virtual ~Block() = default;
  /// Approximate in-memory footprint; drives network-transfer modeling.
  virtual uint64_t ByteSize() const = 0;
};
using BlockPtr = std::shared_ptr<const Block>;

/// Cluster-wide block registry with per-block home executor.
///
/// Thread-safe: tasks running concurrently register/fetch blocks.
class BlockManager {
 public:
  void Put(const BlockId& id, ExecutorId executor, BlockPtr block) {
    std::lock_guard<std::mutex> lock(mutex_);
    blocks_[id] = Entry{executor, std::move(block)};
  }

  /// Exact-version fetch. Returns NotFound if absent (e.g. lost with a
  /// failed executor) — callers then go through lineage recomputation.
  Result<BlockPtr> Get(const BlockId& id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = blocks_.find(id);
    if (it == blocks_.end()) {
      return Status::NotFound(id.ToString() + " not in block manager");
    }
    return it->second.block;
  }

  /// Home executor of a block (locality scheduling), if present.
  std::optional<ExecutorId> LocationOf(const BlockId& id) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = blocks_.find(id);
    if (it == blocks_.end()) return std::nullopt;
    return it->second.executor;
  }

  /// All stored versions of (rdd, partition), ascending. Used by staleness
  /// tests and by the scheduler to detect out-of-date replicas.
  std::vector<uint64_t> VersionsOf(uint64_t rdd, uint32_t partition) const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<uint64_t> versions;
    for (auto it = blocks_.lower_bound(BlockId{rdd, partition, 0});
         it != blocks_.end() &&
         it->first.rdd == rdd && it->first.partition == partition;
         ++it) {
      versions.push_back(it->first.version);
    }
    return versions;
  }

  /// Drops every block homed on `executor` (failure injection). Returns how
  /// many blocks were lost.
  size_t DropExecutor(ExecutorId executor) {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t dropped = 0;
    for (auto it = blocks_.begin(); it != blocks_.end();) {
      if (it->second.executor == executor) {
        it = blocks_.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    return dropped;
  }

  /// Removes every partition's block at exactly `version` of one RDD.
  /// Used to unwind a failed or cancelled append: reduce tasks that
  /// completed before the stage unwound have already Put blocks at the
  /// aborted new version, and leaving them behind would poison a later
  /// append that mints the same version number. Returns blocks dropped.
  size_t DropVersion(uint64_t rdd, uint64_t version) {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t dropped = 0;
    for (auto it = blocks_.lower_bound(BlockId{rdd, 0, 0});
         it != blocks_.end() && it->first.rdd == rdd;) {
      if (it->first.version == version) {
        it = blocks_.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    return dropped;
  }

  /// Removes all versions of one RDD (uncache).
  void DropRdd(uint64_t rdd) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = blocks_.begin(); it != blocks_.end();) {
      if (it->first.rdd == rdd) {
        it = blocks_.erase(it);
      } else {
        ++it;
      }
    }
  }

  size_t NumBlocks() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return blocks_.size();
  }

  uint64_t TotalBytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t total = 0;
    for (const auto& [id, entry] : blocks_) total += entry.block->ByteSize();
    return total;
  }

 private:
  struct Entry {
    ExecutorId executor;
    BlockPtr block;
  };

  mutable std::mutex mutex_;
  std::map<BlockId, Entry> blocks_;
};

}  // namespace idf
