// Cooperative cancellation and deadlines for queries (docs/SERVER.md).
//
// A QueryControl is the per-query control block the query service hands the
// engine: a cancel flag, an optional absolute deadline, and a count of
// stages the query has completed. The query driver thread installs it with
// a ScopedQueryControl before executing the query's plan; Cluster::RunStage
// and RunPipelinedStages pick it up from the thread-local, re-install it on
// every pool worker for the duration of each task (so nested stages and
// task bodies see it too), and consult Check() at every task boundary:
//
//  - at stage entry, before any task is dispatched;
//  - in ExecuteTask, immediately before each task body runs.
//
// A non-OK Check() fails the task with kCancelled / kDeadlineExceeded and
// the existing first-error-wins machinery unwinds the stage: remaining
// tasks are cancelled unstarted, a fused pipelined stage fires its on_cancel
// hook (ShuffleService::AbortStreaming) so producers and consumers blocked
// on streaming channels wake, and the status propagates to the driver. Task
// bodies themselves are never interrupted — granularity is the task, which
// keeps every invariant (pins released by scope exit, shuffle buffers
// released by the operator's error path) intact. Long-running task bodies
// may poll CurrentQueryControl()->Check() to unwind sooner.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/status.h"

namespace idf {

class QueryControl {
 public:
  QueryControl() = default;
  QueryControl(const QueryControl&) = delete;
  QueryControl& operator=(const QueryControl&) = delete;

  /// Requests cancellation. Idempotent; takes effect at the next task
  /// boundary of whatever the query is running.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Sets an absolute deadline in microseconds on the steady clock used by
  /// NowMicros(). 0 clears the deadline.
  void SetDeadlineMicros(int64_t deadline_us) {
    deadline_us_.store(deadline_us, std::memory_order_release);
  }
  int64_t deadline_micros() const {
    return deadline_us_.load(std::memory_order_acquire);
  }

  /// Steady-clock time in microseconds (the deadline clock).
  static int64_t NowMicros();

  /// OK while the query may keep running; kCancelled once Cancel() was
  /// called; kDeadlineExceeded once the deadline passed. Cancellation wins
  /// over deadline expiry when both hold.
  Status Check() const;

  /// Stages this query has completed so far (live progress for /queries).
  uint32_t stages_completed() const {
    return stages_completed_.load(std::memory_order_relaxed);
  }
  void OnStageComplete() {
    stages_completed_.fetch_add(1, std::memory_order_relaxed);
  }

  /// The owning query's id for per-query attribution (obs/query_profile.h);
  /// 0 = none. Written once by the query service before the control is
  /// published to any worker (the submit queue's mutex provides the
  /// happens-before), so a plain field suffices.
  void set_query_id(uint64_t id) { query_id_ = id; }
  uint64_t query_id() const { return query_id_; }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_us_{0};  // 0 = no deadline
  std::atomic<uint32_t> stages_completed_{0};
  uint64_t query_id_ = 0;
};

/// The control block governing work on the calling thread (nullptr outside
/// any query). Installed by ScopedQueryControl.
QueryControl* CurrentQueryControl();

/// RAII install of a query control on the current thread. The engine uses
/// this to propagate the driver thread's control onto pool workers for the
/// span of each task; the query service uses it around the whole query.
class ScopedQueryControl {
 public:
  explicit ScopedQueryControl(QueryControl* control);
  ~ScopedQueryControl();
  ScopedQueryControl(const ScopedQueryControl&) = delete;
  ScopedQueryControl& operator=(const ScopedQueryControl&) = delete;

 private:
  QueryControl* previous_;
};

}  // namespace idf
