#include "engine/cluster.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <future>
#include <numeric>

#include "common/logging.h"
#include "common/timer.h"
#include "engine/scheduler.h"
#include "mem/governor.h"
#include "obs/flight_recorder.h"
#include "obs/introspect.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace idf {

namespace {

/// Cached registry handles for the engine's per-stage/per-task metrics —
/// resolved once, then one relaxed atomic op per update.
struct EngineMetrics {
  obs::Counter& stages = obs::Registry::Global().GetCounter("engine.stages");
  obs::Counter& tasks = obs::Registry::Global().GetCounter("engine.tasks");
  obs::Counter& steals =
      obs::Registry::Global().GetCounter("engine.scheduler.steals");
  obs::Counter& resident_hits =
      obs::Registry::Global().GetCounter("sched.resident_hits");
  obs::Counter& resident_misses =
      obs::Registry::Global().GetCounter("sched.resident_misses");
  obs::Counter& recovered_blocks =
      obs::Registry::Global().GetCounter("engine.recovery.blocks");
  obs::Counter& killed_executors =
      obs::Registry::Global().GetCounter("engine.executors.killed");
  obs::Histogram& task_seconds =
      obs::Registry::Global().GetHistogram("engine.task.seconds");
  obs::Histogram& stage_real_seconds =
      obs::Registry::Global().GetHistogram("engine.stage.real_seconds");
  obs::Histogram& stage_wall_seconds =
      obs::Registry::Global().GetHistogram("engine.stage.wall_seconds");
  obs::Histogram& stage_simulated_seconds =
      obs::Registry::Global().GetHistogram("engine.stage.simulated_seconds");
  obs::Histogram& recovery_seconds =
      obs::Registry::Global().GetHistogram("engine.recovery.seconds");

  static EngineMetrics& Get() {
    static EngineMetrics* metrics = new EngineMetrics();
    return *metrics;
  }
};

/// True while this thread is executing a task body. A task that itself runs
/// a stage (nested RunStage) executes it in-line, sequentially: submitting
/// nested work to the pool could leave every pool thread blocked waiting
/// for work that only the pool itself could run.
thread_local bool t_in_stage_task = false;

/// The governor's live residency view as JSON, served at /residency by the
/// introspection server. Registered here (not in obs) so the obs layer
/// stays free of upward dependencies on mem.
std::string ResidencyJson() {
  mem::MemoryGovernor& gov = mem::MemoryGovernor::Global();
  const mem::ResidencyMap residency = gov.ResidencySnapshot();
  std::string partitions;
  for (const auto& [key, info] : residency) {
    if (!partitions.empty()) partitions += ",";
    partitions += "{\"rdd\":" + std::to_string(key.first) +
                  ",\"partition\":" + std::to_string(key.second) +
                  ",\"resident_bytes\":" + std::to_string(info.resident_bytes) +
                  ",\"spilled_bytes\":" + std::to_string(info.spilled_bytes) +
                  ",\"last_access\":" + std::to_string(info.last_access) + "}";
  }
  return "{\"engaged\":" +
         std::string(mem::MemoryGovernor::Engaged() ? "true" : "false") +
         ",\"budget_bytes\":" + std::to_string(gov.budget_bytes()) +
         ",\"resident_bytes\":" + std::to_string(gov.resident_bytes()) +
         ",\"spilled_bytes\":" + std::to_string(gov.spilled_bytes()) +
         ",\"partitions\":[" + partitions + "]}";
}

/// One-time observability wiring, done at first Cluster construction: the
/// /residency JSON source, the IDF_OBS_PORT server, and the IDF_EVENTS_DIR
/// crash handler. All opt-in; without the env vars only the (always-cheap)
/// handler registration happens.
void WireIntrospectionOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    obs::IntrospectionServer::Global().AddJsonHandler("/residency",
                                                      ResidencyJson);
    obs::IntrospectionServer::StartFromEnv();
    if (std::getenv("IDF_EVENTS_DIR") != nullptr) {
      obs::FlightRecorder::InstallCrashHandler();
    }
  });
}

}  // namespace

/// Outcome slot for one task, written by whichever host thread ran it and
/// merged by the driver in task-index order.
struct Cluster::TaskResult {
  Status status = Status::OK();
  bool ran = false;       // false => cancelled after an earlier failure
  double elapsed = 0;
  TaskMetrics metrics;
  std::vector<SimRead> reads;
};

Cluster::Cluster(ClusterConfig config)
    : config_(config),
      simulator_(config),
      alive_(config.total_executors(), true) {
  IDF_CHECK_OK(config_.Validate());
  scheduler_threads_ = ResolveSchedulerThreads(config_);

  // Engage the memory governor if a budget is configured. Environment
  // overrides win so a budget can be imposed on any binary without code
  // changes (IDF_MEMORY_BUDGET=256m ./sql_test).
  uint64_t budget = config_.memory_budget_bytes;
  if (const char* env = std::getenv("IDF_MEMORY_BUDGET")) {
    Result<uint64_t> parsed = mem::ParseByteSize(env);
    if (parsed.ok()) {
      budget = *parsed;
    } else {
      IDF_LOG_WARN("ignoring unparsable IDF_MEMORY_BUDGET='%s'", env);
    }
  }
  std::string spill_dir = config_.spill_dir;
  if (const char* env = std::getenv("IDF_SPILL_DIR")) spill_dir = env;
  if (budget > 0 || !spill_dir.empty()) {
    mem::MemoryGovernor::Global().Configure(budget, spill_dir);
  }
  WireIntrospectionOnce();
}

ThreadPool& Cluster::pool() {
  std::call_once(pool_once_, [this] {
    pool_ = std::make_unique<ThreadPool>(scheduler_threads_);
  });
  return *pool_;
}

void Cluster::ExecuteTask(const StageSpec& stage, uint32_t index,
                          ExecutorId executor, uint64_t stage_span_id,
                          uint32_t stage_name_id, TaskResult& out) {
  EngineMetrics& em = EngineMetrics::Get();
  obs::FlightRecorder& fr = obs::FlightRecorder::Global();
  // Explicit parent: on a pool thread the stage span lives on the driver's
  // stack, so the implicit thread-local link would miss it.
  obs::Span task_span("task", stage.name + " #" + std::to_string(index),
                      stage_span_id);
  task_span.AddArgInt("executor", executor);
  TaskContext ctx(this, executor);
  const bool was_in_task = t_in_stage_task;
  t_in_stage_task = true;
  // Attribute mem.* events (evictions, reload faults) the body triggers to
  // this simulated executor.
  const int32_t prev_executor = mem::MemoryGovernor::CurrentExecutor();
  mem::MemoryGovernor::SetCurrentExecutor(static_cast<int32_t>(executor));
  // Test hook: lets a deterministic pressure harness evict batches between
  // tasks (mem::GovernorHooks::on_task_start). No-op unless hooks installed.
  mem::MemoryGovernor::NotifyTaskStart();
  fr.Record(obs::EventType::kTaskStart, stage_name_id, index, executor, 0);
  Stopwatch timer;
  try {
    out.status = stage.tasks[index].body(ctx);
  } catch (const mem::ReloadFault& fault) {
    // A spilled batch could not be reloaded (spill file lost, disk error).
    // Pointer-returning read paths have no Status channel, so the failure
    // unwinds to here; fail the task with its kUnavailable status — the
    // same class as a lost block — instead of crashing the process.
    out.status = fault.status();
  }
  out.elapsed = timer.ElapsedSeconds();
  mem::MemoryGovernor::SetCurrentExecutor(prev_executor);
  t_in_stage_task = was_in_task;
  out.ran = true;
  em.tasks.Increment();
  em.task_seconds.Observe(out.elapsed);
  fr.Record(out.status.ok() ? obs::EventType::kTaskFinish
                            : obs::EventType::kTaskFail,
            stage_name_id, index, executor,
            static_cast<uint64_t>(out.elapsed * 1e6));
  if (!out.status.ok()) return;

  ctx.metrics().compute_seconds += out.elapsed;
  if (task_span.active()) {
    task_span.AddArgInt("rows_read", ctx.metrics().rows_read);
    task_span.AddArgInt("rows_written", ctx.metrics().rows_written);
    if (ctx.metrics().index_probes > 0) {
      task_span.AddArgInt("index_probes", ctx.metrics().index_probes);
      task_span.AddArgInt("index_hits", ctx.metrics().index_hits);
    }
    if (ctx.metrics().recovery_seconds > 0) {
      task_span.AddArgNum("recovery_s", ctx.metrics().recovery_seconds);
    }
  }
  out.metrics = ctx.metrics();
  out.reads = ctx.reads();
}

Result<StageMetrics> Cluster::RunStage(const StageSpec& stage) {
  EngineMetrics& em = EngineMetrics::Get();
  obs::FlightRecorder& fr = obs::FlightRecorder::Global();
  // Interned once per stage (cold); tasks reuse the id on their hot path.
  const uint32_t stage_name_id =
      fr.enabled() ? fr.InternName(stage.name) : 0;
  obs::Span stage_span("stage", stage.name);
  Stopwatch stage_timer;
  StageMetrics metrics;
  metrics.num_tasks = static_cast<uint32_t>(stage.tasks.size());
  const size_t n = stage.tasks.size();

  // Phase 1 (driver): fix every task's executor up front, in task-index
  // order. A task keeps its preferred executor when alive; dead or unpinned
  // (kAnyExecutor) tasks round-robin across the alive set so they spread
  // instead of piling onto the first alive executor. The assignment depends
  // only on task order and the alive snapshot — work stealing below moves
  // tasks between *host threads*, never between executors, so DES
  // placement, block homes, and shuffle accounting are identical to a
  // sequential run.
  const std::vector<ExecutorId> alive = AliveExecutors();
  IDF_CHECK_MSG(!alive.empty(), "no alive executors");
  std::vector<uint32_t> lane_of_executor(config_.total_executors(), 0);
  std::vector<char> executor_alive(config_.total_executors(), 0);
  for (uint32_t lane = 0; lane < alive.size(); ++lane) {
    lane_of_executor[alive[lane]] = lane;
    executor_alive[alive[lane]] = 1;
  }
  std::vector<ExecutorId> assigned(n);
  std::vector<uint32_t> lane_of(n);
  size_t rr = 0;
  for (size_t i = 0; i < n; ++i) {
    ExecutorId e = stage.tasks[i].preferred;
    if (e == kAnyExecutor || e >= executor_alive.size() ||
        !executor_alive[e]) {
      e = alive[rr++ % alive.size()];
    }
    assigned[i] = e;
    lane_of[i] = lane_of_executor[e];
  }

  // Phase 1.5 (driver): residency-preferred dispatch order. One snapshot of
  // the governor's residency map per stage; tasks whose declared inputs are
  // fully resident dispatch ahead of tasks that would fault spilled bytes
  // back in (stable on task index, so the order is deterministic and
  // collapses to task-index order when residency is moot). Only the *claim*
  // order changes — executor assignment (above) and the task-index merge
  // (below) are untouched, so results, metrics totals, and DES accounting
  // stay identical to a sequential run.
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::vector<char> resident(n, 1);
  bool have_residency = false;
  if (mem::MemoryGovernor::Engaged()) {
    bool any_inputs = false;
    for (const TaskSpec& t : stage.tasks) {
      if (!t.inputs.empty()) {
        any_inputs = true;
        break;
      }
    }
    if (any_inputs) {
      const mem::ResidencyMap residency =
          mem::MemoryGovernor::Global().ResidencySnapshot();
      for (size_t i = 0; i < n && !have_residency; ++i) {
        for (const PartitionInput& in : stage.tasks[i].inputs) {
          auto it = residency.find({in.rdd, in.partition});
          if (it != residency.end() && it->second.spilled_bytes > 0) {
            have_residency = true;
            break;
          }
        }
      }
      if (have_residency) {
        for (size_t i = 0; i < n; ++i) {
          for (const PartitionInput& in : stage.tasks[i].inputs) {
            auto it = residency.find({in.rdd, in.partition});
            if (it != residency.end() && it->second.spilled_bytes > 0) {
              resident[i] = 0;
              break;
            }
          }
        }
        std::stable_sort(
            order.begin(), order.end(),
            [&](uint32_t a, uint32_t b) { return resident[a] > resident[b]; });
      }
    }
  }
  auto prefetch_inputs = [&stage](uint32_t t) {
    for (const PartitionInput& in : stage.tasks[t].inputs) {
      mem::MemoryGovernor::Global().PrefetchPartition(in.rdd, in.partition);
    }
  };

  // Phase 2: execute. Parallel on the pool when the scheduler has threads
  // to spare; in-line sequential otherwise, and always in-line for a stage
  // launched from inside a task body (re-entrancy guard above).
  std::vector<TaskResult> results(n);
  const uint64_t stage_span_id = stage_span.id();
  const size_t workers = std::min<size_t>(scheduler_threads_, n);
  if (workers <= 1 || t_in_stage_task) {
    for (size_t k = 0; k < n; ++k) {
      const uint32_t i = order[k];
      // Fault the next task's spilled inputs in while this one runs.
      if (have_residency && k + 1 < n && !resident[order[k + 1]]) {
        prefetch_inputs(order[k + 1]);
      }
      ExecuteTask(stage, i, assigned[i], stage_span_id, stage_name_id,
                  results[i]);
      if (have_residency) {
        (resident[i] ? em.resident_hits : em.resident_misses).Increment();
        fr.Record(resident[i] ? obs::EventType::kResidentHit
                              : obs::EventType::kResidentMiss,
                  stage_name_id, i, 0, 0);
      }
      if (!results[i].status.ok()) break;
    }
  } else {
    TaskLanes lanes(lane_of, alive.size(), order);
    std::atomic<bool> cancelled{false};
    std::vector<std::future<void>> done;
    done.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      done.push_back(pool().Submit([&, w] {
        uint32_t index = 0;
        bool stolen = false;
        uint32_t next_in_lane = TaskLanes::kNoTask;
        // First error wins: a failure flips `cancelled`, workers stop
        // claiming tasks, and already-running tasks finish undisturbed.
        while (!cancelled.load(std::memory_order_relaxed) &&
               lanes.Pop(w % alive.size(), &index, &stolen, &next_in_lane)) {
          if (stolen) {
            em.steals.Increment();
            fr.Record(obs::EventType::kSteal, stage_name_id, index, w, 0);
          }
          // Per-lane prefetch: the task now at the head of the lane this
          // claim came from runs next there — fault its spilled inputs in
          // (bounded by budget headroom, so it can never evict this task's
          // pins) while the claimed task executes.
          if (have_residency && next_in_lane != TaskLanes::kNoTask &&
              !resident[next_in_lane]) {
            prefetch_inputs(next_in_lane);
          }
          ExecuteTask(stage, index, assigned[index], stage_span_id,
                      stage_name_id, results[index]);
          if (have_residency) {
            (resident[index] ? em.resident_hits : em.resident_misses)
                .Increment();
            fr.Record(resident[index] ? obs::EventType::kResidentHit
                                      : obs::EventType::kResidentMiss,
                      stage_name_id, index, 0, 0);
          }
          if (!results[index].status.ok()) {
            cancelled.store(true, std::memory_order_relaxed);
          }
        }
      }));
    }
    for (std::future<void>& f : done) f.get();
  }

  // Phase 3 (driver): merge outcomes in task-index order — the same
  // accounting, in the same order, as when tasks ran one by one. The
  // first failed task in index order aborts the stage.
  std::vector<SimTask> sim_tasks;
  sim_tasks.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    TaskResult& r = results[i];
    if (!r.ran) continue;
    if (!r.status.ok()) {
      return Status(r.status.code(), "stage '" + stage.name +
                                         "' task failed: " +
                                         r.status.message());
    }
    metrics.totals.MergeFrom(r.metrics);
    metrics.real_seconds += r.elapsed;
    if (r.metrics.recovery_seconds > 0) ++metrics.recovered_tasks;

    SimTask sim;
    sim.compute_seconds = r.elapsed + stage.tasks[i].extra_sim_seconds;
    sim.preferred = assigned[i];
    sim.reads = stage.tasks[i].static_reads;
    sim.reads.insert(sim.reads.end(), r.reads.begin(), r.reads.end());
    sim_tasks.push_back(std::move(sim));
  }

  const SimOutcome outcome = simulator_.RunStage(sim_tasks);
  metrics.simulated_seconds = outcome.makespan_seconds;
  metrics.network_seconds = outcome.network_seconds;
  metrics.wall_seconds = stage_timer.ElapsedSeconds();
  em.stages.Increment();
  em.stage_real_seconds.Observe(metrics.real_seconds);
  em.stage_wall_seconds.Observe(metrics.wall_seconds);
  em.stage_simulated_seconds.Observe(metrics.simulated_seconds);
  obs::Registry::Global()
      .GetHistogram(obs::TaggedName("engine.stage.seconds",
                                    {{"stage", stage.name}}))
      .Observe(metrics.real_seconds);
  if (stage_span.active()) {
    // Real vs simulated clocks on the same span: the DES verdict for this
    // stage rides along with the measured host time.
    stage_span.AddArgInt("tasks", metrics.num_tasks);
    stage_span.AddArgNum("real_s", metrics.real_seconds);
    stage_span.AddArgNum("wall_s", metrics.wall_seconds);
    stage_span.AddArgNum("simulated_s", metrics.simulated_seconds);
    stage_span.AddArgNum("network_s", metrics.network_seconds);
  }
  IDF_LOG_DEBUG("stage '%s': %u tasks, real %.3fs, wall %.3fs, "
                "simulated %.3fs",
                stage.name.c_str(), metrics.num_tasks, metrics.real_seconds,
                metrics.wall_seconds, metrics.simulated_seconds);
  return metrics;
}

ExecutorId Cluster::HomeExecutorFor(uint64_t rdd, uint32_t partition) const {
  const auto candidates = AliveExecutors();
  IDF_CHECK_MSG(!candidates.empty(), "no alive executors");
  const uint64_t h = HashCombine(Mix64(rdd), partition);
  return candidates[h % candidates.size()];
}

bool Cluster::IsAlive(ExecutorId e) const {
  std::lock_guard<std::mutex> lock(alive_mutex_);
  return e < alive_.size() && alive_[e];
}

std::vector<ExecutorId> Cluster::AliveExecutorsLocked() const {
  std::vector<ExecutorId> out;
  for (ExecutorId e = 0; e < alive_.size(); ++e) {
    if (alive_[e]) out.push_back(e);
  }
  return out;
}

std::vector<ExecutorId> Cluster::AliveExecutors() const {
  std::lock_guard<std::mutex> lock(alive_mutex_);
  return AliveExecutorsLocked();
}

size_t Cluster::KillExecutor(ExecutorId e) {
  {
    std::lock_guard<std::mutex> lock(alive_mutex_);
    IDF_CHECK(e < alive_.size());
    IDF_CHECK_MSG(AliveExecutorsLocked().size() > 1,
                  "cannot kill the last executor");
    alive_[e] = false;
  }
  const size_t lost = blocks_.DropExecutor(e);
  EngineMetrics::Get().killed_executors.Increment();
  obs::FlightRecorder::Global().Record(obs::EventType::kExecutorKill, 0, e,
                                       lost, 0);
  IDF_LOG_INFO("killed executor %u (%zu blocks lost)", e, lost);
  return lost;
}

void Cluster::ReviveExecutor(ExecutorId e) {
  std::lock_guard<std::mutex> lock(alive_mutex_);
  IDF_CHECK(e < alive_.size());
  alive_[e] = true;
}

void Cluster::RegisterLineage(uint64_t rdd, PartitionComputeFn fn) {
  std::lock_guard<std::mutex> lock(lineage_mutex_);
  lineage_[rdd] = std::move(fn);
}

Result<BlockPtr> Cluster::GetOrCompute(const BlockId& id, TaskContext& ctx) {
  {
    Result<BlockPtr> found = blocks_.Get(id);
    if (found.ok()) {
      auto home = blocks_.LocationOf(id);
      if (home.has_value() && *home != ctx.executor()) {
        // Reading a block homed elsewhere: model the transfer.
        ctx.AddRead(*home, (*found)->ByteSize());
      }
      return found;
    }
  }

  PartitionComputeFn fn;
  {
    std::lock_guard<std::mutex> lock(lineage_mutex_);
    auto it = lineage_.find(id.rdd);
    if (it == lineage_.end()) {
      return Status::Unavailable(id.ToString() +
                                 " lost and no lineage registered");
    }
    fn = it->second;
  }

  IDF_LOG_INFO("recomputing %s from lineage on executor %u",
               id.ToString().c_str(), ctx.executor());
  obs::Span span("recovery", "recompute " + id.ToString());
  span.AddArgInt("executor", ctx.executor());
  Stopwatch timer;
  Result<BlockPtr> recomputed = fn(id.partition, id.version, ctx);
  IDF_RETURN_IF_ERROR(recomputed.status());
  const double elapsed = timer.ElapsedSeconds();
  ctx.metrics().recovery_seconds += elapsed;
  EngineMetrics& em = EngineMetrics::Get();
  em.recovered_blocks.Increment();
  em.recovery_seconds.Observe(elapsed);
  obs::FlightRecorder::Global().Record(
      obs::EventType::kRecoveryBlock, 0, id.rdd, id.partition,
      static_cast<uint64_t>(elapsed * 1e6));
  blocks_.Put(id, ctx.executor(), *recomputed);
  return recomputed;
}

}  // namespace idf
