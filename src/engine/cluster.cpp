#include "engine/cluster.h"

#include "common/logging.h"
#include "common/timer.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace idf {

namespace {

/// Cached registry handles for the engine's per-stage/per-task metrics —
/// resolved once, then one relaxed atomic op per update.
struct EngineMetrics {
  obs::Counter& stages = obs::Registry::Global().GetCounter("engine.stages");
  obs::Counter& tasks = obs::Registry::Global().GetCounter("engine.tasks");
  obs::Counter& recovered_blocks =
      obs::Registry::Global().GetCounter("engine.recovery.blocks");
  obs::Counter& killed_executors =
      obs::Registry::Global().GetCounter("engine.executors.killed");
  obs::Histogram& task_seconds =
      obs::Registry::Global().GetHistogram("engine.task.seconds");
  obs::Histogram& stage_real_seconds =
      obs::Registry::Global().GetHistogram("engine.stage.real_seconds");
  obs::Histogram& stage_simulated_seconds =
      obs::Registry::Global().GetHistogram("engine.stage.simulated_seconds");
  obs::Histogram& recovery_seconds =
      obs::Registry::Global().GetHistogram("engine.recovery.seconds");

  static EngineMetrics& Get() {
    static EngineMetrics* metrics = new EngineMetrics();
    return *metrics;
  }
};

}  // namespace

Cluster::Cluster(ClusterConfig config)
    : config_(config),
      simulator_(config),
      alive_(config.total_executors(), true) {
  IDF_CHECK_OK(config_.Validate());
}

Result<StageMetrics> Cluster::RunStage(const StageSpec& stage) {
  EngineMetrics& em = EngineMetrics::Get();
  obs::Span stage_span("stage", stage.name);
  StageMetrics metrics;
  metrics.num_tasks = static_cast<uint32_t>(stage.tasks.size());
  std::vector<SimTask> sim_tasks;
  sim_tasks.reserve(stage.tasks.size());

  uint32_t task_index = 0;
  for (const TaskSpec& spec : stage.tasks) {
    ExecutorId executor = spec.preferred;
    if (executor == kAnyExecutor || executor >= alive_.size() ||
        !alive_[executor]) {
      // No locality (or home executor dead): any alive executor.
      const auto candidates = AliveExecutors();
      IDF_CHECK_MSG(!candidates.empty(), "no alive executors");
      executor = candidates[0];
    }

    obs::Span task_span("task",
                        stage.name + " #" + std::to_string(task_index++));
    task_span.AddArgInt("executor", executor);
    TaskContext ctx(this, executor);
    Stopwatch timer;
    Status status = spec.body(ctx);
    const double elapsed = timer.ElapsedSeconds();
    em.tasks.Increment();
    em.task_seconds.Observe(elapsed);
    if (!status.ok()) {
      return Status(status.code(),
                    "stage '" + stage.name + "' task failed: " +
                        status.message());
    }

    ctx.metrics().compute_seconds += elapsed;
    if (ctx.metrics().recovery_seconds > 0) ++metrics.recovered_tasks;
    if (task_span.active()) {
      task_span.AddArgInt("rows_read", ctx.metrics().rows_read);
      task_span.AddArgInt("rows_written", ctx.metrics().rows_written);
      if (ctx.metrics().index_probes > 0) {
        task_span.AddArgInt("index_probes", ctx.metrics().index_probes);
        task_span.AddArgInt("index_hits", ctx.metrics().index_hits);
      }
      if (ctx.metrics().recovery_seconds > 0) {
        task_span.AddArgNum("recovery_s", ctx.metrics().recovery_seconds);
      }
    }
    metrics.totals.MergeFrom(ctx.metrics());
    metrics.real_seconds += elapsed;

    SimTask sim;
    sim.compute_seconds = elapsed + spec.extra_sim_seconds;
    sim.preferred = executor;
    sim.reads = spec.static_reads;
    sim.reads.insert(sim.reads.end(), ctx.reads().begin(), ctx.reads().end());
    sim_tasks.push_back(std::move(sim));
  }

  const SimOutcome outcome = simulator_.RunStage(sim_tasks);
  metrics.simulated_seconds = outcome.makespan_seconds;
  metrics.network_seconds = outcome.network_seconds;
  em.stages.Increment();
  em.stage_real_seconds.Observe(metrics.real_seconds);
  em.stage_simulated_seconds.Observe(metrics.simulated_seconds);
  obs::Registry::Global()
      .GetHistogram(obs::TaggedName("engine.stage.seconds",
                                    {{"stage", stage.name}}))
      .Observe(metrics.real_seconds);
  if (stage_span.active()) {
    // Real vs simulated clocks on the same span: the DES verdict for this
    // stage rides along with the measured host time.
    stage_span.AddArgInt("tasks", metrics.num_tasks);
    stage_span.AddArgNum("real_s", metrics.real_seconds);
    stage_span.AddArgNum("simulated_s", metrics.simulated_seconds);
    stage_span.AddArgNum("network_s", metrics.network_seconds);
  }
  IDF_LOG_DEBUG("stage '%s': %u tasks, real %.3fs, simulated %.3fs",
                stage.name.c_str(), metrics.num_tasks, metrics.real_seconds,
                metrics.simulated_seconds);
  return metrics;
}

ExecutorId Cluster::HomeExecutorFor(uint64_t rdd, uint32_t partition) const {
  const auto candidates = AliveExecutors();
  IDF_CHECK_MSG(!candidates.empty(), "no alive executors");
  const uint64_t h = HashCombine(Mix64(rdd), partition);
  return candidates[h % candidates.size()];
}

bool Cluster::IsAlive(ExecutorId e) const {
  return e < alive_.size() && alive_[e];
}

std::vector<ExecutorId> Cluster::AliveExecutors() const {
  std::vector<ExecutorId> out;
  for (ExecutorId e = 0; e < alive_.size(); ++e) {
    if (alive_[e]) out.push_back(e);
  }
  return out;
}

size_t Cluster::KillExecutor(ExecutorId e) {
  IDF_CHECK(e < alive_.size());
  IDF_CHECK_MSG(AliveExecutors().size() > 1, "cannot kill the last executor");
  alive_[e] = false;
  const size_t lost = blocks_.DropExecutor(e);
  EngineMetrics::Get().killed_executors.Increment();
  IDF_LOG_INFO("killed executor %u (%zu blocks lost)", e, lost);
  return lost;
}

void Cluster::ReviveExecutor(ExecutorId e) {
  IDF_CHECK(e < alive_.size());
  alive_[e] = true;
}

void Cluster::RegisterLineage(uint64_t rdd, PartitionComputeFn fn) {
  std::lock_guard<std::mutex> lock(lineage_mutex_);
  lineage_[rdd] = std::move(fn);
}

Result<BlockPtr> Cluster::GetOrCompute(const BlockId& id, TaskContext& ctx) {
  {
    Result<BlockPtr> found = blocks_.Get(id);
    if (found.ok()) {
      auto home = blocks_.LocationOf(id);
      if (home.has_value() && *home != ctx.executor()) {
        // Reading a block homed elsewhere: model the transfer.
        ctx.AddRead(*home, (*found)->ByteSize());
      }
      return found;
    }
  }

  PartitionComputeFn fn;
  {
    std::lock_guard<std::mutex> lock(lineage_mutex_);
    auto it = lineage_.find(id.rdd);
    if (it == lineage_.end()) {
      return Status::Unavailable(id.ToString() +
                                 " lost and no lineage registered");
    }
    fn = it->second;
  }

  IDF_LOG_INFO("recomputing %s from lineage on executor %u",
               id.ToString().c_str(), ctx.executor());
  obs::Span span("recovery", "recompute " + id.ToString());
  span.AddArgInt("executor", ctx.executor());
  Stopwatch timer;
  Result<BlockPtr> recomputed = fn(id.partition, id.version, ctx);
  IDF_RETURN_IF_ERROR(recomputed.status());
  const double elapsed = timer.ElapsedSeconds();
  ctx.metrics().recovery_seconds += elapsed;
  EngineMetrics& em = EngineMetrics::Get();
  em.recovered_blocks.Increment();
  em.recovery_seconds.Observe(elapsed);
  blocks_.Put(id, ctx.executor(), *recomputed);
  return recomputed;
}

}  // namespace idf
