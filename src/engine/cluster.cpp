#include "engine/cluster.h"

#include "common/logging.h"
#include "common/timer.h"

namespace idf {

Cluster::Cluster(ClusterConfig config)
    : config_(config),
      simulator_(config),
      alive_(config.total_executors(), true) {
  IDF_CHECK_OK(config_.Validate());
}

Result<StageMetrics> Cluster::RunStage(const StageSpec& stage) {
  StageMetrics metrics;
  metrics.num_tasks = static_cast<uint32_t>(stage.tasks.size());
  std::vector<SimTask> sim_tasks;
  sim_tasks.reserve(stage.tasks.size());

  for (const TaskSpec& spec : stage.tasks) {
    ExecutorId executor = spec.preferred;
    if (executor == kAnyExecutor || executor >= alive_.size() ||
        !alive_[executor]) {
      // No locality (or home executor dead): any alive executor.
      const auto candidates = AliveExecutors();
      IDF_CHECK_MSG(!candidates.empty(), "no alive executors");
      executor = candidates[0];
    }

    TaskContext ctx(this, executor);
    Stopwatch timer;
    Status status = spec.body(ctx);
    const double elapsed = timer.ElapsedSeconds();
    if (!status.ok()) {
      return Status(status.code(),
                    "stage '" + stage.name + "' task failed: " +
                        status.message());
    }

    ctx.metrics().compute_seconds += elapsed;
    if (ctx.metrics().recovery_seconds > 0) ++metrics.recovered_tasks;
    metrics.totals.MergeFrom(ctx.metrics());
    metrics.real_seconds += elapsed;

    SimTask sim;
    sim.compute_seconds = elapsed + spec.extra_sim_seconds;
    sim.preferred = executor;
    sim.reads = spec.static_reads;
    sim.reads.insert(sim.reads.end(), ctx.reads().begin(), ctx.reads().end());
    sim_tasks.push_back(std::move(sim));
  }

  const SimOutcome outcome = simulator_.RunStage(sim_tasks);
  metrics.simulated_seconds = outcome.makespan_seconds;
  metrics.network_seconds = outcome.network_seconds;
  IDF_LOG_DEBUG("stage '%s': %u tasks, real %.3fs, simulated %.3fs",
                stage.name.c_str(), metrics.num_tasks, metrics.real_seconds,
                metrics.simulated_seconds);
  return metrics;
}

ExecutorId Cluster::HomeExecutorFor(uint64_t rdd, uint32_t partition) const {
  const auto candidates = AliveExecutors();
  IDF_CHECK_MSG(!candidates.empty(), "no alive executors");
  const uint64_t h = HashCombine(Mix64(rdd), partition);
  return candidates[h % candidates.size()];
}

bool Cluster::IsAlive(ExecutorId e) const {
  return e < alive_.size() && alive_[e];
}

std::vector<ExecutorId> Cluster::AliveExecutors() const {
  std::vector<ExecutorId> out;
  for (ExecutorId e = 0; e < alive_.size(); ++e) {
    if (alive_[e]) out.push_back(e);
  }
  return out;
}

size_t Cluster::KillExecutor(ExecutorId e) {
  IDF_CHECK(e < alive_.size());
  IDF_CHECK_MSG(AliveExecutors().size() > 1, "cannot kill the last executor");
  alive_[e] = false;
  const size_t lost = blocks_.DropExecutor(e);
  IDF_LOG_INFO("killed executor %u (%zu blocks lost)", e, lost);
  return lost;
}

void Cluster::ReviveExecutor(ExecutorId e) {
  IDF_CHECK(e < alive_.size());
  alive_[e] = true;
}

void Cluster::RegisterLineage(uint64_t rdd, PartitionComputeFn fn) {
  std::lock_guard<std::mutex> lock(lineage_mutex_);
  lineage_[rdd] = std::move(fn);
}

Result<BlockPtr> Cluster::GetOrCompute(const BlockId& id, TaskContext& ctx) {
  {
    Result<BlockPtr> found = blocks_.Get(id);
    if (found.ok()) {
      auto home = blocks_.LocationOf(id);
      if (home.has_value() && *home != ctx.executor()) {
        // Reading a block homed elsewhere: model the transfer.
        ctx.AddRead(*home, (*found)->ByteSize());
      }
      return found;
    }
  }

  PartitionComputeFn fn;
  {
    std::lock_guard<std::mutex> lock(lineage_mutex_);
    auto it = lineage_.find(id.rdd);
    if (it == lineage_.end()) {
      return Status::Unavailable(id.ToString() +
                                 " lost and no lineage registered");
    }
    fn = it->second;
  }

  IDF_LOG_INFO("recomputing %s from lineage on executor %u",
               id.ToString().c_str(), ctx.executor());
  Stopwatch timer;
  Result<BlockPtr> recomputed = fn(id.partition, id.version, ctx);
  IDF_RETURN_IF_ERROR(recomputed.status());
  ctx.metrics().recovery_seconds += timer.ElapsedSeconds();
  blocks_.Put(id, ctx.executor(), *recomputed);
  return recomputed;
}

}  // namespace idf
