#include "engine/cluster.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <numeric>
#include <thread>

#include "common/hash.h"
#include "common/logging.h"
#include "common/timer.h"
#include "engine/cancel.h"
#include "engine/scheduler.h"
#include "mem/governor.h"
#include "obs/flight_recorder.h"
#include "obs/introspect.h"
#include "obs/metrics_registry.h"
#include "obs/query_profile.h"
#include "obs/trace.h"
#include "testing/chaos.h"

namespace idf {

namespace {

/// Cached registry handles for the engine's per-stage/per-task metrics —
/// resolved once, then one relaxed atomic op per update.
struct EngineMetrics {
  obs::Counter& stages = obs::Registry::Global().GetCounter("engine.stages");
  obs::Counter& tasks = obs::Registry::Global().GetCounter("engine.tasks");
  obs::Counter& steals =
      obs::Registry::Global().GetCounter("engine.scheduler.steals");
  obs::Counter& resident_hits =
      obs::Registry::Global().GetCounter("sched.resident_hits");
  obs::Counter& resident_misses =
      obs::Registry::Global().GetCounter("sched.resident_misses");
  obs::Counter& recovered_blocks =
      obs::Registry::Global().GetCounter("engine.recovery.blocks");
  obs::Counter& killed_executors =
      obs::Registry::Global().GetCounter("engine.executors.killed");
  obs::Histogram& task_seconds =
      obs::Registry::Global().GetHistogram("engine.task.seconds");
  obs::Histogram& stage_real_seconds =
      obs::Registry::Global().GetHistogram("engine.stage.real_seconds");
  obs::Histogram& stage_wall_seconds =
      obs::Registry::Global().GetHistogram("engine.stage.wall_seconds");
  obs::Histogram& stage_simulated_seconds =
      obs::Registry::Global().GetHistogram("engine.stage.simulated_seconds");
  obs::Histogram& recovery_seconds =
      obs::Registry::Global().GetHistogram("engine.recovery.seconds");

  static EngineMetrics& Get() {
    static EngineMetrics* metrics = new EngineMetrics();
    return *metrics;
  }
};

/// True while this thread is executing a task body. A task that itself runs
/// a stage (nested RunStage) executes it in-line, sequentially: submitting
/// nested work to the pool could leave every pool thread blocked waiting
/// for work that only the pool itself could run.
thread_local bool t_in_stage_task = false;

/// The governor's live residency view as JSON, served at /residency by the
/// introspection server. Registered here (not in obs) so the obs layer
/// stays free of upward dependencies on mem.
std::string ResidencyJson() {
  mem::MemoryGovernor& gov = mem::MemoryGovernor::Global();
  const mem::ResidencyMap residency = gov.ResidencySnapshot();
  std::string partitions;
  for (const auto& [key, info] : residency) {
    if (!partitions.empty()) partitions += ",";
    partitions += "{\"rdd\":" + std::to_string(key.first) +
                  ",\"partition\":" + std::to_string(key.second) +
                  ",\"resident_bytes\":" + std::to_string(info.resident_bytes) +
                  ",\"spilled_bytes\":" + std::to_string(info.spilled_bytes) +
                  ",\"last_access\":" + std::to_string(info.last_access) + "}";
  }
  return "{\"engaged\":" +
         std::string(mem::MemoryGovernor::Engaged() ? "true" : "false") +
         ",\"budget_bytes\":" + std::to_string(gov.budget_bytes()) +
         ",\"resident_bytes\":" + std::to_string(gov.resident_bytes()) +
         ",\"spilled_bytes\":" + std::to_string(gov.spilled_bytes()) +
         ",\"partitions\":[" + partitions + "]}";
}

/// Force-evicts every governed payload (chaos kEvictWorld). Iterates a
/// residency snapshot rather than calling EnforceBudget so it evicts even
/// when the budget is satisfied — that is the point of the fault. Pinned
/// payloads survive (EvictPartition skips them), exactly like a real
/// worst-case pressure wave.
size_t ChaosEvictWorld() {
  mem::MemoryGovernor& gov = mem::MemoryGovernor::Global();
  size_t evicted = 0;
  for (const auto& [key, info] : gov.ResidencySnapshot()) {
    evicted += gov.EvictPartition(key.first, key.second);
  }
  return evicted;
}

/// Chaos kBudgetSqueeze: halve the budget, enforce it (evicting down to the
/// squeezed ceiling), then restore. Serialized so two racing squeezes can't
/// observe each other's halved budget as the "previous" value and wedge the
/// budget low permanently.
void ChaosSqueezeBudget() {
  static std::mutex squeeze_mutex;
  std::lock_guard<std::mutex> lock(squeeze_mutex);
  mem::MemoryGovernor& gov = mem::MemoryGovernor::Global();
  const uint64_t prev = gov.budget_bytes();
  if (prev < 2) return;  // unbudgeted runs have nothing to squeeze
  gov.Configure(prev / 2);  // Configure(>0) enforces the squeezed budget
  gov.Configure(prev);
}

/// One-time observability wiring, done at first Cluster construction: the
/// /residency JSON source, the IDF_OBS_PORT server, and the IDF_EVENTS_DIR
/// crash handler. All opt-in; without the env vars only the (always-cheap)
/// handler registration happens. Also hands the chaos engine its one upward
/// actuator ("evict every governed payload", used by the background
/// evictor) — registration is unconditional and costs one mutex'd store.
void WireIntrospectionOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    obs::IntrospectionServer::Global().AddJsonHandler("/residency",
                                                      ResidencyJson);
    obs::IntrospectionServer::StartFromEnv();
    if (std::getenv("IDF_EVENTS_DIR") != nullptr) {
      obs::FlightRecorder::InstallCrashHandler();
    }
    chaos::ChaosEngine::SetEvictWorldActuator(ChaosEvictWorld);
  });
}

}  // namespace

/// Outcome slot for one task, written by whichever host thread ran it and
/// merged by the driver in task-index order.
struct Cluster::TaskResult {
  Status status = Status::OK();
  bool ran = false;       // false => cancelled after an earlier failure
  double elapsed = 0;
  TaskMetrics metrics;
  std::vector<SimRead> reads;
};

/// Shared state of one RunPipelinedStages invocation, published to its
/// worker threads through t_pipeline_ so a starved shuffle consumer
/// (ReduceInputStream's idle hook) can claim pending map work.
struct Cluster::PipelineContext {
  Cluster* cluster = nullptr;
  const StageSpec* map_stage = nullptr;
  const StagePlan* map_plan = nullptr;
  TaskLanes* map_lanes = nullptr;
  std::vector<TaskResult>* map_results = nullptr;
  uint64_t stage_span_id = 0;
  uint32_t map_name_id = 0;
  QueryControl* control = nullptr;  // owning query's token (may be null)
  std::atomic<bool>* cancelled = nullptr;
  const std::function<void()>* fail = nullptr;

  /// Claims and runs one pending map task on behalf of `home`'s lane.
  /// Returns false when the map lanes are drained (or the stage cancelled).
  bool RunOneMapTask(size_t home, bool helper) {
    if (cancelled->load(std::memory_order_relaxed)) return false;
    uint32_t index = 0;
    bool stolen = false;
    uint32_t next_in_lane = TaskLanes::kNoTask;
    if (!map_lanes->Pop(home, &index, &stolen, &next_in_lane)) return false;
    EngineMetrics& em = EngineMetrics::Get();
    obs::FlightRecorder& fr = obs::FlightRecorder::Global();
    if (stolen || helper) {
      em.steals.Increment();
      fr.Record(obs::EventType::kSteal, map_name_id, index, home, 0);
    }
    if (map_plan->have_residency && next_in_lane != TaskLanes::kNoTask &&
        !map_plan->resident[next_in_lane]) {
      for (const PartitionInput& in : map_stage->tasks[next_in_lane].inputs) {
        mem::MemoryGovernor::Global().PrefetchPartition(in.rdd, in.partition);
      }
    }
    TaskResult& out = (*map_results)[index];
    cluster->ExecuteTask(*map_stage, index, map_plan->assigned[index],
                         stage_span_id, map_name_id, control, out);
    if (map_plan->have_residency) {
      (map_plan->resident[index] ? em.resident_hits : em.resident_misses)
          .Increment();
      fr.Record(map_plan->resident[index] ? obs::EventType::kResidentHit
                                          : obs::EventType::kResidentMiss,
                map_name_id, index, 0, 0);
    }
    if (!out.status.ok()) (*fail)();
    return true;
  }
};

thread_local Cluster::PipelineContext* Cluster::t_pipeline_ = nullptr;
thread_local size_t Cluster::t_pipeline_home_ = 0;

Cluster::Cluster(ClusterConfig config)
    : config_(config),
      simulator_(config),
      alive_(config.total_executors(), true) {
  IDF_CHECK_OK(config_.Validate());
  scheduler_threads_ = ResolveSchedulerThreads(config_);

  // Engage the memory governor if a budget is configured. Environment
  // overrides win so a budget can be imposed on any binary without code
  // changes (IDF_MEMORY_BUDGET=256m ./sql_test).
  uint64_t budget = config_.memory_budget_bytes;
  if (const char* env = std::getenv("IDF_MEMORY_BUDGET")) {
    Result<uint64_t> parsed = mem::ParseByteSize(env);
    if (parsed.ok()) {
      budget = *parsed;
    } else {
      IDF_LOG_WARN("ignoring unparsable IDF_MEMORY_BUDGET='%s'", env);
    }
  }
  std::string spill_dir = config_.spill_dir;
  if (const char* env = std::getenv("IDF_SPILL_DIR")) spill_dir = env;
  if (budget > 0 || !spill_dir.empty()) {
    mem::MemoryGovernor::Global().Configure(budget, spill_dir);
  }
  WireIntrospectionOnce();
}

ThreadPool& Cluster::pool() {
  std::call_once(pool_once_, [this] {
    pool_ = std::make_unique<ThreadPool>(scheduler_threads_);
  });
  return *pool_;
}

void Cluster::ApplyTaskChaos(const StageSpec& stage, uint32_t index,
                             ExecutorId executor, QueryControl* control) {
  if (!chaos::ChaosEngine::Active()) return;
  chaos::ChaosEngine& engine = chaos::ChaosEngine::Global();
  const uint64_t stage_hash = HashString(stage.name);
  const uint64_t key = HashCombine(stage_hash, index);
  const chaos::TaskAction action = engine.OnTaskStart(stage_hash, index);
  // Delaying this lane's task is also how "force a steal" is injected: the
  // lane sits on its claimed task while the other lanes drain their queues
  // and start stealing from it.
  if (action.delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(action.delay_us));
  }
  if (action.evict_world) ChaosEvictWorld();
  if (action.squeeze_budget) ChaosSqueezeBudget();
  // Kill/cancel/deadline sit behind guards the engine cannot evaluate, so
  // the decision came back unrecorded; record only what actually fired.
  if (action.kill_executor && TryKillExecutor(executor)) {
    engine.RecordFault(chaos::Site::kTask, chaos::Fault::kKillExecutor, key,
                       executor);
  }
  if (control != nullptr) {
    if (action.cancel_query) {
      control->Cancel();
      engine.RecordFault(chaos::Site::kTask, chaos::Fault::kCancelQuery, key,
                         0);
    }
    if (action.expire_query) {
      control->SetDeadlineMicros(QueryControl::NowMicros());
      engine.RecordFault(chaos::Site::kTask, chaos::Fault::kExpireQuery, key,
                         0);
    }
  }
}

void Cluster::ExecuteTask(const StageSpec& stage, uint32_t index,
                          ExecutorId executor, uint64_t stage_span_id,
                          uint32_t stage_name_id, QueryControl* control,
                          TaskResult& out) {
  EngineMetrics& em = EngineMetrics::Get();
  obs::FlightRecorder& fr = obs::FlightRecorder::Global();
  // Per-query attribution for everything this task does — the start/finish
  // events below, and every governor/shuffle event the body triggers on
  // this thread. The control's id wins (it is the served query's identity);
  // the ambient id covers unserved work (benches, tests, EXPLAIN ANALYZE).
  obs::QueryScope query_scope(control != nullptr && control->query_id() != 0
                                  ? control->query_id()
                                  : obs::CurrentQueryId());
  // Task-boundary cancellation check: a cancelled or past-deadline query
  // fails this task before its body runs, and first-error-wins unwinds the
  // rest of the stage. Cheap (two relaxed-ish atomic loads) and it runs on
  // the host thread that claimed the task, so every lane observes a cancel
  // within one task of it being requested.
  if (control != nullptr) {
    Status check = control->Check();
    if (!check.ok()) {
      out.status = std::move(check);
      out.ran = true;
      fr.Record(obs::EventType::kTaskFail, stage_name_id, index, executor, 0);
      return;
    }
  }
  // Propagate the driver's control onto this (pool) thread for the body's
  // duration: nested in-line stages and polling bodies pick it up via
  // CurrentQueryControl().
  ScopedQueryControl scoped_control(control);
  // Explicit parent: on a pool thread the stage span lives on the driver's
  // stack, so the implicit thread-local link would miss it.
  obs::Span task_span("task", stage.name + " #" + std::to_string(index),
                      stage_span_id);
  task_span.AddArgInt("executor", executor);
  TaskContext ctx(this, executor);
  const bool was_in_task = t_in_stage_task;
  t_in_stage_task = true;
  // Attribute mem.* events (evictions, reload faults) the body triggers to
  // this simulated executor.
  const int32_t prev_executor = mem::MemoryGovernor::CurrentExecutor();
  mem::MemoryGovernor::SetCurrentExecutor(static_cast<int32_t>(executor));
  // Chaos task-boundary site: scripted hooks (deterministic pressure
  // harnesses evicting between tasks) and armed probability faults. One
  // relaxed load when inactive.
  ApplyTaskChaos(stage, index, executor, control);
  fr.Record(obs::EventType::kTaskStart, stage_name_id, index, executor, 0);
  Stopwatch timer;
  try {
    out.status = stage.tasks[index].body(ctx);
  } catch (const mem::ReloadFault& fault) {
    // A spilled batch could not be reloaded (spill file lost, disk error).
    // Pointer-returning read paths have no Status channel, so the failure
    // unwinds to here; fail the task with its kUnavailable status — the
    // same class as a lost block — instead of crashing the process.
    out.status = fault.status();
  }
  out.elapsed = timer.ElapsedSeconds();
  mem::MemoryGovernor::SetCurrentExecutor(prev_executor);
  t_in_stage_task = was_in_task;
  out.ran = true;
  em.tasks.Increment();
  // Direct feed, not event-derived: the pre-body cancellation path above
  // records task_fail without counting a task, so deriving counts from
  // events would break conservation against engine.tasks.
  obs::CurrentQueryProfile()->tasks.fetch_add(1, std::memory_order_relaxed);
  em.task_seconds.Observe(out.elapsed);
  fr.Record(out.status.ok() ? obs::EventType::kTaskFinish
                            : obs::EventType::kTaskFail,
            stage_name_id, index, executor,
            static_cast<uint64_t>(out.elapsed * 1e6));
  if (!out.status.ok()) return;

  ctx.metrics().compute_seconds += out.elapsed;
  if (task_span.active()) {
    task_span.AddArgInt("rows_read", ctx.metrics().rows_read);
    task_span.AddArgInt("rows_written", ctx.metrics().rows_written);
    if (ctx.metrics().index_probes > 0) {
      task_span.AddArgInt("index_probes", ctx.metrics().index_probes);
      task_span.AddArgInt("index_hits", ctx.metrics().index_hits);
    }
    if (ctx.metrics().recovery_seconds > 0) {
      task_span.AddArgNum("recovery_s", ctx.metrics().recovery_seconds);
    }
  }
  out.metrics = ctx.metrics();
  out.reads = ctx.reads();
}

Cluster::StagePlan Cluster::BuildStagePlan(
    const StageSpec& stage, const std::vector<ExecutorId>& alive) {
  const size_t n = stage.tasks.size();
  StagePlan plan;

  // Assignment: fix every task's executor up front, in task-index order. A
  // task keeps its preferred executor when alive; dead or unpinned
  // (kAnyExecutor) tasks round-robin across the alive set so they spread
  // instead of piling onto the first alive executor. The assignment depends
  // only on task order and the alive snapshot — work stealing moves tasks
  // between *host threads*, never between executors, so DES placement,
  // block homes, and shuffle accounting are identical to a sequential run.
  std::vector<uint32_t> lane_of_executor(config_.total_executors(), 0);
  std::vector<char> executor_alive(config_.total_executors(), 0);
  for (uint32_t lane = 0; lane < alive.size(); ++lane) {
    lane_of_executor[alive[lane]] = lane;
    executor_alive[alive[lane]] = 1;
  }
  plan.assigned.resize(n);
  plan.lane_of.resize(n);
  size_t rr = 0;
  for (size_t i = 0; i < n; ++i) {
    ExecutorId e = stage.tasks[i].preferred;
    if (e == kAnyExecutor || e >= executor_alive.size() ||
        !executor_alive[e]) {
      e = alive[rr++ % alive.size()];
    }
    plan.assigned[i] = e;
    plan.lane_of[i] = lane_of_executor[e];
  }

  // Residency-preferred dispatch order. One snapshot of the governor's
  // residency map per stage; tasks whose declared inputs are fully resident
  // dispatch ahead of tasks that would fault spilled bytes back in (stable
  // on task index, so the order is deterministic and collapses to
  // task-index order when residency is moot). Only the *claim* order
  // changes — executor assignment (above) and the task-index merge are
  // untouched, so results, metrics totals, and DES accounting stay
  // identical to a sequential run.
  plan.order.resize(n);
  std::iota(plan.order.begin(), plan.order.end(), 0u);
  plan.resident.assign(n, 1);
  if (mem::MemoryGovernor::Engaged()) {
    bool any_inputs = false;
    for (const TaskSpec& t : stage.tasks) {
      if (!t.inputs.empty()) {
        any_inputs = true;
        break;
      }
    }
    if (any_inputs) {
      const mem::ResidencyMap residency =
          mem::MemoryGovernor::Global().ResidencySnapshot();
      for (size_t i = 0; i < n && !plan.have_residency; ++i) {
        for (const PartitionInput& in : stage.tasks[i].inputs) {
          auto it = residency.find({in.rdd, in.partition});
          if (it != residency.end() && it->second.spilled_bytes > 0) {
            plan.have_residency = true;
            break;
          }
        }
      }
      if (plan.have_residency) {
        for (size_t i = 0; i < n; ++i) {
          for (const PartitionInput& in : stage.tasks[i].inputs) {
            auto it = residency.find({in.rdd, in.partition});
            if (it != residency.end() && it->second.spilled_bytes > 0) {
              plan.resident[i] = 0;
              break;
            }
          }
        }
        std::stable_sort(plan.order.begin(), plan.order.end(),
                         [&](uint32_t a, uint32_t b) {
                           return plan.resident[a] > plan.resident[b];
                         });
      }
    }
  }
  return plan;
}

Result<StageMetrics> Cluster::RunStage(const StageSpec& stage) {
  // The owning query's cancellation token, captured once on the driver
  // thread (pool workers receive it through ExecuteTask). Null outside a
  // served query — all checks below collapse to a pointer compare.
  QueryControl* const control = CurrentQueryControl();
  if (control != nullptr) IDF_RETURN_IF_ERROR(control->Check());
  EngineMetrics& em = EngineMetrics::Get();
  obs::FlightRecorder& fr = obs::FlightRecorder::Global();
  // The owning query id, re-installed on every pool worker below so steal
  // and residency events (recorded on the worker before/after ExecuteTask)
  // attribute to this query, not to whatever ran on that thread last.
  const uint64_t query_id = control != nullptr && control->query_id() != 0
                                ? control->query_id()
                                : obs::CurrentQueryId();
  // Interned once per stage (cold); tasks reuse the id on their hot path.
  const uint32_t stage_name_id =
      fr.enabled() ? fr.InternName(stage.name) : 0;
  obs::Span stage_span("stage", stage.name);
  Stopwatch stage_timer;
  StageMetrics metrics;
  metrics.num_tasks = static_cast<uint32_t>(stage.tasks.size());
  const size_t n = stage.tasks.size();

  // Phases 1 + 1.5 (driver): executor assignment and residency-preferred
  // claim order (BuildStagePlan — shared with the fused path).
  const std::vector<ExecutorId> alive = AliveExecutors();
  IDF_CHECK_MSG(!alive.empty(), "no alive executors");
  const StagePlan plan = BuildStagePlan(stage, alive);
  const std::vector<ExecutorId>& assigned = plan.assigned;
  const std::vector<uint32_t>& order = plan.order;
  const std::vector<char>& resident = plan.resident;
  const bool have_residency = plan.have_residency;
  auto prefetch_inputs = [&stage](uint32_t t) {
    for (const PartitionInput& in : stage.tasks[t].inputs) {
      mem::MemoryGovernor::Global().PrefetchPartition(in.rdd, in.partition);
    }
  };

  // Phase 2: execute. Parallel on the pool when the scheduler has threads
  // to spare; in-line sequential otherwise, and always in-line for a stage
  // launched from inside a task body (re-entrancy guard above).
  std::vector<TaskResult> results(n);
  const uint64_t stage_span_id = stage_span.id();
  const size_t workers = std::min<size_t>(scheduler_threads_, n);
  if (workers <= 1 || t_in_stage_task) {
    for (size_t k = 0; k < n; ++k) {
      const uint32_t i = order[k];
      // Fault the next task's spilled inputs in while this one runs.
      if (have_residency && k + 1 < n && !resident[order[k + 1]]) {
        prefetch_inputs(order[k + 1]);
      }
      ExecuteTask(stage, i, assigned[i], stage_span_id, stage_name_id,
                  control, results[i]);
      if (have_residency) {
        (resident[i] ? em.resident_hits : em.resident_misses).Increment();
        fr.Record(resident[i] ? obs::EventType::kResidentHit
                              : obs::EventType::kResidentMiss,
                  stage_name_id, i, 0, 0);
      }
      if (!results[i].status.ok()) break;
    }
  } else {
    TaskLanes lanes(plan.lane_of, alive.size(), order);
    std::atomic<bool> cancelled{false};
    std::vector<std::future<void>> done;
    done.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      done.push_back(pool().Submit([&, w] {
        obs::QueryScope query_scope(query_id);
        uint32_t index = 0;
        bool stolen = false;
        uint32_t next_in_lane = TaskLanes::kNoTask;
        // First error wins: a failure flips `cancelled`, workers stop
        // claiming tasks, and already-running tasks finish undisturbed.
        while (!cancelled.load(std::memory_order_relaxed) &&
               lanes.Pop(w % alive.size(), &index, &stolen, &next_in_lane)) {
          if (stolen) {
            em.steals.Increment();
            fr.Record(obs::EventType::kSteal, stage_name_id, index, w, 0);
          }
          // Per-lane prefetch: the task now at the head of the lane this
          // claim came from runs next there — fault its spilled inputs in
          // (bounded by budget headroom, so it can never evict this task's
          // pins) while the claimed task executes.
          if (have_residency && next_in_lane != TaskLanes::kNoTask &&
              !resident[next_in_lane]) {
            prefetch_inputs(next_in_lane);
          }
          ExecuteTask(stage, index, assigned[index], stage_span_id,
                      stage_name_id, control, results[index]);
          if (have_residency) {
            (resident[index] ? em.resident_hits : em.resident_misses)
                .Increment();
            fr.Record(resident[index] ? obs::EventType::kResidentHit
                                      : obs::EventType::kResidentMiss,
                      stage_name_id, index, 0, 0);
          }
          if (!results[index].status.ok()) {
            cancelled.store(true, std::memory_order_relaxed);
          }
        }
      }));
    }
    for (std::future<void>& f : done) f.get();
  }

  // Phase 3 (driver): merge outcomes in task-index order — the same
  // accounting, in the same order, as when tasks ran one by one. The
  // first failed task in index order aborts the stage.
  std::vector<SimTask> sim_tasks;
  sim_tasks.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    TaskResult& r = results[i];
    if (!r.ran) continue;
    if (!r.status.ok()) {
      return Status(r.status.code(), "stage '" + stage.name +
                                         "' task failed: " +
                                         r.status.message());
    }
    metrics.totals.MergeFrom(r.metrics);
    metrics.real_seconds += r.elapsed;
    if (r.metrics.recovery_seconds > 0) ++metrics.recovered_tasks;

    SimTask sim;
    sim.compute_seconds = r.elapsed + stage.tasks[i].extra_sim_seconds;
    sim.preferred = assigned[i];
    sim.reads = stage.tasks[i].static_reads;
    sim.reads.insert(sim.reads.end(), r.reads.begin(), r.reads.end());
    sim_tasks.push_back(std::move(sim));
  }

  const SimOutcome outcome = simulator_.RunStage(sim_tasks);
  metrics.simulated_seconds = outcome.makespan_seconds;
  metrics.network_seconds = outcome.network_seconds;
  metrics.wall_seconds = stage_timer.ElapsedSeconds();
  em.stages.Increment();
  em.stage_real_seconds.Observe(metrics.real_seconds);
  em.stage_wall_seconds.Observe(metrics.wall_seconds);
  em.stage_simulated_seconds.Observe(metrics.simulated_seconds);
  obs::Registry::Global()
      .GetHistogram(obs::TaggedName("engine.stage.seconds",
                                    {{"stage", stage.name}}))
      .Observe(metrics.real_seconds);
  if (stage_span.active()) {
    // Real vs simulated clocks on the same span: the DES verdict for this
    // stage rides along with the measured host time.
    stage_span.AddArgInt("tasks", metrics.num_tasks);
    stage_span.AddArgNum("real_s", metrics.real_seconds);
    stage_span.AddArgNum("wall_s", metrics.wall_seconds);
    stage_span.AddArgNum("simulated_s", metrics.simulated_seconds);
    stage_span.AddArgNum("network_s", metrics.network_seconds);
  }
  IDF_LOG_DEBUG("stage '%s': %u tasks, real %.3fs, wall %.3fs, "
                "simulated %.3fs",
                stage.name.c_str(), metrics.num_tasks, metrics.real_seconds,
                metrics.wall_seconds, metrics.simulated_seconds);
  if (control != nullptr) control->OnStageComplete();
  return metrics;
}

Result<StageMetrics> Cluster::RunPipelinedStages(const StageSpec& map_stage,
                                                 const StageSpec& reduce_stage,
                                                 const PipelineHooks& hooks) {
  QueryControl* const control = CurrentQueryControl();
  if (control != nullptr) IDF_RETURN_IF_ERROR(control->Check());
  EngineMetrics& em = EngineMetrics::Get();
  obs::FlightRecorder& fr = obs::FlightRecorder::Global();
  const uint64_t query_id = control != nullptr && control->query_id() != 0
                                ? control->query_id()
                                : obs::CurrentQueryId();
  const std::string fused_name = map_stage.name + "+" + reduce_stage.name;
  // Sub-stage names intern separately: the journal still groups task events
  // by which half of the fused stage they belong to.
  const uint32_t map_name_id =
      fr.enabled() ? fr.InternName(map_stage.name) : 0;
  const uint32_t reduce_name_id =
      fr.enabled() ? fr.InternName(reduce_stage.name) : 0;
  obs::Span stage_span("stage", fused_name);
  Stopwatch stage_timer;
  const size_t num_map = map_stage.tasks.size();
  const size_t num_reduce = reduce_stage.tasks.size();
  StageMetrics metrics;
  metrics.num_tasks = static_cast<uint32_t>(num_map + num_reduce);

  // One alive snapshot for both halves; each half gets the same per-stage
  // assignment (round-robin restarting at 0) it would get from its own
  // RunStage call, so DES placement and block homes match the barrier path.
  const std::vector<ExecutorId> alive = AliveExecutors();
  IDF_CHECK_MSG(!alive.empty(), "no alive executors");
  const StagePlan map_plan = BuildStagePlan(map_stage, alive);
  const StagePlan reduce_plan = BuildStagePlan(reduce_stage, alive);

  std::vector<TaskResult> map_results(num_map);
  std::vector<TaskResult> reduce_results(num_reduce);
  const uint64_t stage_span_id = stage_span.id();
  const size_t workers =
      std::min<size_t>(scheduler_threads_, num_map + num_reduce);
  std::atomic<bool> cancelled{false};
  const std::function<void()> fail = [&] {
    if (!cancelled.exchange(true, std::memory_order_relaxed) &&
        hooks.on_cancel) {
      hooks.on_cancel();
    }
  };

  if (workers <= 1 || t_in_stage_task) {
    // Sequential fallback: maps fully, then reduces — the barrier schedule
    // in one stage. Reachable only when the caller did not enforce a
    // backpressure window (RunShuffleStages), so nothing can block.
    for (size_t k = 0;
         k < num_map && !cancelled.load(std::memory_order_relaxed); ++k) {
      const uint32_t i = map_plan.order[k];
      ExecuteTask(map_stage, i, map_plan.assigned[i], stage_span_id,
                  map_name_id, control, map_results[i]);
      if (!map_results[i].status.ok()) fail();
    }
    for (size_t k = 0;
         k < num_reduce && !cancelled.load(std::memory_order_relaxed); ++k) {
      const uint32_t i = reduce_plan.order[k];
      ExecuteTask(reduce_stage, i, reduce_plan.assigned[i], stage_span_id,
                  reduce_name_id, control, reduce_results[i]);
      if (!reduce_results[i].status.ok()) fail();
    }
  } else {
    TaskLanes map_lanes(map_plan.lane_of, alive.size(), map_plan.order);
    TaskLanes reduce_lanes(reduce_plan.lane_of, alive.size(),
                           reduce_plan.order);
    PipelineContext pctx;
    pctx.cluster = this;
    pctx.map_stage = &map_stage;
    pctx.map_plan = &map_plan;
    pctx.map_lanes = &map_lanes;
    pctx.map_results = &map_results;
    pctx.stage_span_id = stage_span_id;
    pctx.map_name_id = map_name_id;
    pctx.control = control;
    pctx.cancelled = &cancelled;
    pctx.fail = &fail;

    // Runs one pending reduce task for `home`'s lane; false when drained.
    auto run_one_reduce = [&](size_t home) -> bool {
      if (cancelled.load(std::memory_order_relaxed)) return false;
      uint32_t index = 0;
      bool stolen = false;
      uint32_t next_in_lane = TaskLanes::kNoTask;
      if (!reduce_lanes.Pop(home, &index, &stolen, &next_in_lane)) {
        return false;
      }
      if (stolen) {
        em.steals.Increment();
        fr.Record(obs::EventType::kSteal, reduce_name_id, index, home, 0);
      }
      if (reduce_plan.have_residency &&
          next_in_lane != TaskLanes::kNoTask &&
          !reduce_plan.resident[next_in_lane]) {
        for (const PartitionInput& in :
             reduce_stage.tasks[next_in_lane].inputs) {
          mem::MemoryGovernor::Global().PrefetchPartition(in.rdd,
                                                          in.partition);
        }
      }
      ExecuteTask(reduce_stage, index, reduce_plan.assigned[index],
                  stage_span_id, reduce_name_id, control,
                  reduce_results[index]);
      if (reduce_plan.have_residency) {
        (reduce_plan.resident[index] ? em.resident_hits : em.resident_misses)
            .Increment();
        fr.Record(reduce_plan.resident[index]
                      ? obs::EventType::kResidentHit
                      : obs::EventType::kResidentMiss,
                  reduce_name_id, index, 0, 0);
      }
      if (!reduce_results[index].status.ok()) fail();
      return true;
    };

    std::vector<std::future<void>> done;
    done.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      done.push_back(pool().Submit([&, w] {
        obs::QueryScope query_scope(query_id);
        const size_t home = w % alive.size();
        PipelineContext* const prev_ctx = t_pipeline_;
        const size_t prev_home = t_pipeline_home_;
        t_pipeline_ = &pctx;
        t_pipeline_home_ = home;
        // Alternating claim preference: odd workers drain reduce lanes
        // first so consumers come up while even workers feed the channels.
        // A reduce task that outpaces its producers steals map work through
        // the idle hook (TryHelpPipelinedMapTask) rather than sleeping.
        const bool reduce_first = (w % 2 == 1);
        while (!cancelled.load(std::memory_order_relaxed)) {
          bool ran;
          if (reduce_first) {
            ran = run_one_reduce(home) || pctx.RunOneMapTask(home, false);
          } else {
            ran = pctx.RunOneMapTask(home, false) || run_one_reduce(home);
          }
          if (!ran) break;
        }
        t_pipeline_ = prev_ctx;
        t_pipeline_home_ = prev_home;
      }));
    }
    for (std::future<void>& f : done) f.get();
  }

  // Merge in combined task-index order: maps, then reduces — exactly the
  // accounting order of the two-stage barrier path. Failure selection
  // prefers the first root-cause failure; statuses the cancellation itself
  // induced (hooks.is_abort, e.g. "shuffle aborted") only surface when no
  // primary failure exists.
  const TaskResult* primary = nullptr;
  const TaskResult* secondary = nullptr;
  auto scan_failures = [&](const std::vector<TaskResult>& results) {
    for (const TaskResult& tr : results) {
      if (!tr.ran || tr.status.ok()) continue;
      const bool induced = hooks.is_abort && hooks.is_abort(tr.status);
      if (!induced && primary == nullptr) primary = &tr;
      if (secondary == nullptr) secondary = &tr;
    }
  };
  scan_failures(map_results);
  scan_failures(reduce_results);
  const TaskResult* failed = primary != nullptr ? primary : secondary;
  if (failed != nullptr) {
    return Status(failed->status.code(), "stage '" + fused_name +
                                             "' task failed: " +
                                             failed->status.message());
  }

  std::vector<SimTask> sim_tasks;
  sim_tasks.reserve(num_map + num_reduce);
  auto merge_stage = [&](const StageSpec& stage, const StagePlan& plan,
                         std::vector<TaskResult>& results) {
    for (uint32_t i = 0; i < results.size(); ++i) {
      TaskResult& tr = results[i];
      IDF_CHECK(tr.ran);
      metrics.totals.MergeFrom(tr.metrics);
      metrics.real_seconds += tr.elapsed;
      if (tr.metrics.recovery_seconds > 0) ++metrics.recovered_tasks;
      SimTask sim;
      sim.compute_seconds = tr.elapsed + stage.tasks[i].extra_sim_seconds;
      sim.preferred = plan.assigned[i];
      sim.reads = stage.tasks[i].static_reads;
      sim.reads.insert(sim.reads.end(), tr.reads.begin(), tr.reads.end());
      sim_tasks.push_back(std::move(sim));
    }
  };
  merge_stage(map_stage, map_plan, map_results);
  merge_stage(reduce_stage, reduce_plan, reduce_results);

  const SimOutcome outcome = simulator_.RunStage(sim_tasks);
  metrics.simulated_seconds = outcome.makespan_seconds;
  metrics.network_seconds = outcome.network_seconds;
  metrics.wall_seconds = stage_timer.ElapsedSeconds();
  em.stages.Increment();
  em.stage_real_seconds.Observe(metrics.real_seconds);
  em.stage_wall_seconds.Observe(metrics.wall_seconds);
  em.stage_simulated_seconds.Observe(metrics.simulated_seconds);
  obs::Registry::Global()
      .GetHistogram(obs::TaggedName("engine.stage.seconds",
                                    {{"stage", fused_name}}))
      .Observe(metrics.real_seconds);
  if (stage_span.active()) {
    stage_span.AddArgInt("tasks", metrics.num_tasks);
    stage_span.AddArgNum("real_s", metrics.real_seconds);
    stage_span.AddArgNum("wall_s", metrics.wall_seconds);
    stage_span.AddArgNum("simulated_s", metrics.simulated_seconds);
    stage_span.AddArgNum("network_s", metrics.network_seconds);
  }
  IDF_LOG_DEBUG("fused stage '%s': %u tasks, real %.3fs, wall %.3fs, "
                "simulated %.3fs",
                fused_name.c_str(), metrics.num_tasks, metrics.real_seconds,
                metrics.wall_seconds, metrics.simulated_seconds);
  if (control != nullptr) control->OnStageComplete();
  return metrics;
}

bool Cluster::TryHelpPipelinedMapTask() {
  PipelineContext* pctx = t_pipeline_;
  if (pctx == nullptr || pctx->cluster != this) return false;
  return pctx->RunOneMapTask(t_pipeline_home_, /*helper=*/true);
}

Result<std::vector<StageMetrics>> Cluster::RunShuffleStages(
    uint64_t shuffle_id, const StageSpec& map_stage,
    const StageSpec& reduce_stage, bool pipelined) {
  std::vector<StageMetrics> out;
  if (!pipelined) {
    Result<StageMetrics> map_metrics = RunStage(map_stage);
    IDF_RETURN_IF_ERROR(map_metrics.status());
    Result<StageMetrics> reduce_metrics = RunStage(reduce_stage);
    IDF_RETURN_IF_ERROR(reduce_metrics.status());
    out.push_back(*map_metrics);
    out.push_back(*reduce_metrics);
    return out;
  }
  // Enforce the window only when the fused stage will actually run
  // parallel: a sequential run pushes every buffer before any consumer
  // exists and would deadlock against its own window.
  const size_t workers = std::min<size_t>(
      scheduler_threads_, map_stage.tasks.size() + reduce_stage.tasks.size());
  const bool parallel = workers > 1 && !t_in_stage_task;
  shuffle_.StartStreaming(shuffle_id, ShuffleWindowBytes(),
                          /*enforce_window=*/parallel);
  PipelineHooks hooks;
  hooks.on_cancel = [this, shuffle_id] { shuffle_.AbortStreaming(shuffle_id); };
  hooks.is_abort = [](const Status& s) { return IsShuffleAborted(s); };
  Result<StageMetrics> fused =
      RunPipelinedStages(map_stage, reduce_stage, hooks);
  IDF_RETURN_IF_ERROR(fused.status());
  out.push_back(*fused);
  return out;
}

std::unique_ptr<RoutedBufferStream> OpenReduceStream(TaskContext& ctx,
                                                     uint64_t shuffle_id,
                                                     uint32_t reduce_part,
                                                     bool pipelined) {
  ShuffleService& service = ctx.cluster().shuffle();
  if (!pipelined) {
    // Declare every per-map network read before the consumer touches a row,
    // in map-task-id order — the classic path's exact read order, which the
    // DES's NIC-queue interleaving is sensitive to.
    auto buffers = service.FetchReduceInputs(shuffle_id, reduce_part);
    for (const auto& buf : buffers) {
      ctx.AddRead(buf->source, buf->bytes.size());
    }
    return std::make_unique<BarrierReduceInput>(std::move(buffers));
  }
  Cluster* cluster = &ctx.cluster();
  TaskContext* ctx_ptr = &ctx;
  return std::make_unique<ReduceInputStream>(
      service, shuffle_id, reduce_part,
      /*idle=*/[cluster] { return cluster->TryHelpPipelinedMapTask(); },
      /*on_map_read=*/
      [ctx_ptr](ExecutorId source, uint64_t bytes) {
        ctx_ptr->AddRead(source, bytes);
      });
}

ExecutorId Cluster::HomeExecutorFor(uint64_t rdd, uint32_t partition) const {
  const auto candidates = AliveExecutors();
  IDF_CHECK_MSG(!candidates.empty(), "no alive executors");
  const uint64_t h = HashCombine(Mix64(rdd), partition);
  return candidates[h % candidates.size()];
}

bool Cluster::IsAlive(ExecutorId e) const {
  std::lock_guard<std::mutex> lock(alive_mutex_);
  return e < alive_.size() && alive_[e];
}

std::vector<ExecutorId> Cluster::AliveExecutorsLocked() const {
  std::vector<ExecutorId> out;
  for (ExecutorId e = 0; e < alive_.size(); ++e) {
    if (alive_[e]) out.push_back(e);
  }
  return out;
}

std::vector<ExecutorId> Cluster::AliveExecutors() const {
  std::lock_guard<std::mutex> lock(alive_mutex_);
  return AliveExecutorsLocked();
}

size_t Cluster::KillExecutor(ExecutorId e) {
  {
    std::lock_guard<std::mutex> lock(alive_mutex_);
    IDF_CHECK(e < alive_.size());
    IDF_CHECK_MSG(AliveExecutorsLocked().size() > 1,
                  "cannot kill the last executor");
    alive_[e] = false;
  }
  return DropKilledExecutor(e);
}

bool Cluster::TryKillExecutor(ExecutorId e) {
  {
    std::lock_guard<std::mutex> lock(alive_mutex_);
    if (e >= alive_.size() || !alive_[e] ||
        AliveExecutorsLocked().size() <= 1) {
      return false;
    }
    alive_[e] = false;
  }
  DropKilledExecutor(e);
  return true;
}

size_t Cluster::DropKilledExecutor(ExecutorId e) {
  const size_t lost = blocks_.DropExecutor(e);
  EngineMetrics::Get().killed_executors.Increment();
  obs::FlightRecorder::Global().Record(obs::EventType::kExecutorKill, 0, e,
                                       lost, 0);
  IDF_LOG_INFO("killed executor %u (%zu blocks lost)", e, lost);
  return lost;
}

void Cluster::ReviveExecutor(ExecutorId e) {
  std::lock_guard<std::mutex> lock(alive_mutex_);
  IDF_CHECK(e < alive_.size());
  alive_[e] = true;
}

void Cluster::RegisterLineage(uint64_t rdd, PartitionComputeFn fn) {
  std::lock_guard<std::mutex> lock(lineage_mutex_);
  lineage_[rdd] = std::move(fn);
}

Result<BlockPtr> Cluster::GetOrCompute(const BlockId& id, TaskContext& ctx) {
  {
    Result<BlockPtr> found = blocks_.Get(id);
    if (found.ok()) {
      auto home = blocks_.LocationOf(id);
      if (home.has_value() && *home != ctx.executor()) {
        // Reading a block homed elsewhere: model the transfer.
        ctx.AddRead(*home, (*found)->ByteSize());
      }
      return found;
    }
  }

  PartitionComputeFn fn;
  {
    std::lock_guard<std::mutex> lock(lineage_mutex_);
    auto it = lineage_.find(id.rdd);
    if (it == lineage_.end()) {
      return Status::Unavailable(id.ToString() +
                                 " lost and no lineage registered");
    }
    fn = it->second;
  }

  IDF_LOG_INFO("recomputing %s from lineage on executor %u",
               id.ToString().c_str(), ctx.executor());
  obs::Span span("recovery", "recompute " + id.ToString());
  span.AddArgInt("executor", ctx.executor());
  Stopwatch timer;
  Result<BlockPtr> recomputed = fn(id.partition, id.version, ctx);
  IDF_RETURN_IF_ERROR(recomputed.status());
  const double elapsed = timer.ElapsedSeconds();
  ctx.metrics().recovery_seconds += elapsed;
  EngineMetrics& em = EngineMetrics::Get();
  em.recovered_blocks.Increment();
  em.recovery_seconds.Observe(elapsed);
  obs::FlightRecorder::Global().Record(
      obs::EventType::kRecoveryBlock, 0, id.rdd, id.partition,
      static_cast<uint64_t>(elapsed * 1e6));
  blocks_.Put(id, ctx.executor(), *recomputed);
  return recomputed;
}

}  // namespace idf
