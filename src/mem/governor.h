// Memory governor: budgeted caching with batch-granular eviction and
// transparent spill/reload.
//
// The paper's Indexed DataFrame keeps everything in memory but notes the
// representation "could easily extend to store data out-of-core" (§III-C).
// This subsystem is that extension's control plane: a process-wide
// MemoryGovernor with a configurable byte budget tracks every governed
// allocation (row batches register through storage-layer hooks), and when
// the budget is exceeded it evicts *sealed* payloads — cost-aware LRU:
// oldest last access first, already-spilled payloads preferred because
// their reload cost is a read with no write — by spilling them to a spill
// directory and freeing the in-memory buffer. The owning object survives
// as a disk-backed stub; the next access faults the payload back in.
//
// Pinning: readers open an AccessScope (RAII, thread-local) around an
// operation — a scan, an indexed join probe, an append that chases a
// back-pointer — and every payload touched through the scope is pinned
// until the scope closes. Pinned payloads are never evicted mid-operation.
// Unsealed payloads (the open tail batch of a live version) are never
// registered and therefore never evicted.
//
// COW interplay: a sealed batch shared by N snapshot versions is one
// Evictable — it spills once, reloads once, and every sharer sees the
// reloaded buffer (§III-E sharing is by pointer, not by copy).
//
// Concurrency protocol (reader vs. evictor, Dekker-style):
//   reader:  pins_.fetch_add(seq_cst); load state_ (seq_cst);
//            resident  -> read the buffer,
//            otherwise -> lock the governor, reload, mark resident.
//   evictor: (governor lock held) store state_ = kEvicting (seq_cst);
//            load pins_ (seq_cst); nonzero -> roll back to kResident and
//            skip the victim, zero -> spill + free, state_ = kEvicted.
// Sequential consistency guarantees at least one side observes the other:
// either the evictor sees the pin and aborts, or the reader sees the
// eviction and takes the reload path (which waits on the governor lock
// until the transition completes).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"

namespace idf::obs {
struct QueryProfile;
}  // namespace idf::obs

namespace idf::mem {

class MemoryGovernor;
class AccessScope;

/// A spill file on disk, removed when the last owner lets go. Both the
/// evicted payload and the salvage catalog (fault-tolerance) co-own files,
/// so a dropped block's spill survives for recovery.
class SpillFile {
 public:
  explicit SpillFile(std::string path) : path_(std::move(path)) {}
  ~SpillFile();
  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Thrown by AccessScope::Pin when a spilled payload cannot be reloaded
/// (spill file removed by tmp cleanup, disk error). Pointer-returning read
/// paths (e.g. PartitionStore::RowAt) have no Status channel, so the failure
/// unwinds as an exception; Cluster::ExecuteTask catches it at the task
/// boundary and turns it into a kUnavailable task status — a clean stage
/// failure the driver can react to — instead of aborting the process.
class ReloadFault : public std::exception {
 public:
  explicit ReloadFault(Status status)
      : status_(std::move(status)),
        message_("reload fault: " + status_.ToString()) {}
  const Status& status() const { return status_; }
  const char* what() const noexcept override { return message_.c_str(); }

 private:
  Status status_;
  std::string message_;
};

/// Identity of a governed payload inside a replayable store, used by the
/// salvage catalog: a spilled batch of (owner rdd, shard partition) at
/// position `index` within store instance `instance`. Recovery can reload
/// a contiguous index prefix of one instance instead of recomputing it.
struct SpillIdentity {
  uint64_t owner = 0;     // e.g. rdd id; 0 = anonymous (not salvageable)
  uint32_t shard = 0;     // e.g. partition number
  uint64_t instance = 0;  // store incarnation (recomputes get a fresh one)
  uint32_t index = 0;     // position within the store, dense from 0
  // Columnar chunks tag (owner, shard) for the residency map but opt out of
  // the salvage catalog: their spill format is column vectors, not the
  // self-delimiting row encoding salvage replay parses.
  bool salvage = true;

  bool salvageable() const { return owner != 0 && salvage; }
};

/// Aggregate residency of one (owner rdd, shard partition) — the scheduler's
/// per-PartitionStore view of where a partition's governed payloads live.
struct ResidencyInfo {
  uint64_t resident_bytes = 0;  // payload bytes currently in RAM
  uint64_t spilled_bytes = 0;   // payload bytes currently on disk only
  uint64_t last_access = 0;     // newest LRU tick across the payloads
};

/// Keyed by (owner, shard); only identity-tagged payloads appear.
using ResidencyMap = std::map<std::pair<uint64_t, uint32_t>, ResidencyInfo>;

/// Base class for anything the governor may evict. Storage objects (row
/// batches) derive from it, implement the payload I/O, and call
/// SealForGovernor() once the payload is immutable and RetireFromGovernor()
/// first thing in their destructor.
class Evictable {
 public:
  virtual ~Evictable();
  Evictable(const Evictable&) = delete;
  Evictable& operator=(const Evictable&) = delete;

  bool resident() const {
    return state_.load(std::memory_order_acquire) == kResident;
  }
  bool sealed_for_governor() const {
    return sealed_.load(std::memory_order_acquire);
  }

 protected:
  Evictable() = default;

  /// Declares the payload immutable and evictable from now on. Idempotent.
  /// `rows` is the logical unit count recorded in the salvage catalog.
  void SealForGovernor(uint64_t rows);

  /// Must be the first statement of the most-derived destructor: blocks
  /// until any in-flight eviction of this payload finishes, then removes it
  /// from the governor. (The base-class destructor is too late — the
  /// derived payload vtable entries are already gone by then.)
  void RetireFromGovernor();

  /// Accounting hooks for the payload buffer's lifetime.
  void AccountAllocated(uint64_t bytes);

  void SetSpillIdentity(const SpillIdentity& id) { identity_ = id; }
  const SpillIdentity& spill_identity() const { return identity_; }

 private:
  friend class MemoryGovernor;
  friend class AccessScope;

  enum State : int { kResident = 0, kEvicting = 1, kEvicted = 2 };

  /// Writes the payload to `path`; returns bytes written. Called by the
  /// governor with its lock held and pins_ == 0.
  virtual Result<uint64_t> SpillPayload(const std::string& path) = 0;
  /// Frees the in-memory buffer (the payload survives on disk). Called by
  /// the governor after a successful spill, lock held, pins_ == 0.
  virtual void ReleasePayload() = 0;
  /// Restores the payload from a file SpillPayload wrote earlier. Must not
  /// call AccountAllocated — the governor does the reload accounting.
  virtual Status ReloadPayload(const std::string& path) = 0;
  /// Bytes of RAM the resident payload occupies (freed by eviction).
  virtual uint64_t PayloadBytes() const = 0;

  mutable std::atomic<int> state_{kResident};
  mutable std::atomic<uint32_t> pins_{0};
  mutable std::atomic<uint64_t> last_access_{0};
  // Last AccessScope that pinned this payload — lets the scope skip
  // re-pinning on every row of a batch it already holds.
  mutable std::atomic<uint64_t> scope_hint_{0};
  std::atomic<bool> sealed_{false};

  SpillIdentity identity_;
  uint64_t rows_ = 0;              // set at seal
  uint64_t spill_bytes_ = 0;       // set at first spill
  std::shared_ptr<SpillFile> spill_file_;  // immutable payload: write once
  bool registered_ = false;        // guarded by the governor mutex
};

/// One salvageable spill segment: `rows` rows of payload at `path`.
struct SalvageSegment {
  uint32_t index = 0;
  uint64_t rows = 0;
  uint64_t bytes = 0;
  std::string path;
  std::shared_ptr<SpillFile> file;  // keeps the file alive while held
};

class MemoryGovernor {
 public:
  /// The process-wide governor (leaky singleton, like obs::Registry).
  static MemoryGovernor& Global();

  /// (Re)configures budget and spill directory. budget_bytes == 0 disables
  /// eviction (the governor still accounts). An empty spill_dir keeps the
  /// current one (default: <tmp>/idf-spill-<pid>); a non-empty one gets an
  /// idf-spill-<pid> subdirectory appended so concurrent processes sharing
  /// a directory never touch each other's spill files. Shrinking the budget
  /// below current residency evicts immediately.
  void Configure(uint64_t budget_bytes, const std::string& spill_dir = "");

  uint64_t budget_bytes() const {
    return budget_.load(std::memory_order_relaxed);
  }
  std::string spill_dir();

  /// True once a budget has ever been set in this process. Sticky: spilled
  /// payloads may outlive a later Configure(0), so access paths keep
  /// checking until process exit.
  static bool Engaged() {
    return engaged_.load(std::memory_order_relaxed);
  }

  uint64_t resident_bytes() const {
    return resident_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t spilled_bytes() const {
    return spilled_bytes_.load(std::memory_order_relaxed);
  }

  /// Evicts cost-ranked victims until resident_bytes() <= budget or no
  /// eviction candidate remains unpinned. Called from allocation and reload
  /// paths; callable directly (tests, benches).
  void EnforceBudget();

  // ---- admission reservations (query service, docs/SERVER.md) -----------

  /// Tries to reserve `bytes` of the budget for an admitted query. The
  /// reservation is bookkeeping for admission control — it does not pin or
  /// preallocate memory; the governor's eviction machinery remains the
  /// enforcement backstop. Fails with kResourceExhausted when the budget is
  /// nonzero and existing reservations plus `bytes` would exceed it (a
  /// single reservation larger than the whole budget is also rejected).
  /// With no budget configured every reservation succeeds.
  Status TryReserve(uint64_t bytes);

  /// Returns a reservation taken with TryReserve. Clamps at zero (releases
  /// never underflow, e.g. when Configure() raced a release).
  void ReleaseReservation(uint64_t bytes);

  /// Sum of outstanding admission reservations.
  uint64_t reserved_bytes() const {
    return reserved_bytes_.load(std::memory_order_relaxed);
  }

  // ---- residency map & prefetch (spill-aware scheduling) ----------------

  /// Per-(owner, shard) aggregate of where governed payloads live right
  /// now. The stage scheduler snapshots this once per stage to order
  /// dispatch by residency; O(#sealed payloads) under the governor lock.
  ResidencyMap ResidencySnapshot();

  /// Asynchronously reloads the spilled payloads of (owner, shard) on the
  /// prefetch thread. Prefetch spends only budget *headroom*: it reloads a
  /// payload only while resident + payload fits under the budget and never
  /// calls EnforceBudget, so it cannot evict anything — in particular not
  /// the running task's pinned working set (the scoped-budget bound). A
  /// reload failure is swallowed (counted in mem.prefetch.failures); the
  /// demand fault-in path retries and surfaces the error. No-op until the
  /// governor is engaged with a nonzero budget.
  void PrefetchPartition(uint64_t owner, uint32_t shard);

  /// Blocks until the prefetch queue is drained and the prefetch thread is
  /// idle. Test-only: makes prefetch effects observable deterministically.
  void DrainPrefetchForTesting();

  /// Force-evicts every sealed, unpinned, resident payload of (owner,
  /// shard); returns how many were evicted. Test/bench hook for
  /// constructing memory-pressure scenarios by hand — engages the governor
  /// (readers must take the pin/fault-in path afterwards).
  size_t EvictPartition(uint64_t owner, uint32_t shard);

  // ---- leak introspection (chaos determinism gate) ----------------------

  /// Sum of pins_ across every registered payload. Test-only: the chaos
  /// gate asserts zero after scrubbing transient pins — any remainder is a
  /// leaked AccessScope pin.
  uint64_t TotalPinsForTesting();

  /// Releases every thread's lingering transient pin (held by design until
  /// the thread's next scope-less pin; see AccessScope::Pin) so
  /// TotalPinsForTesting can distinguish leaks from linger. Returns how
  /// many pins were released. Safe concurrently with readers: a scrubbed
  /// slot just means the owning thread's next scope-less pin skips one
  /// release.
  size_t ScrubTransientPinsForTesting();

  // ---- salvage catalog (fault tolerance) --------------------------------

  /// Longest contiguous index prefix (0..k-1) of spilled segments for one
  /// (owner, shard), all from the same store instance — the instance with
  /// the most salvageable rows wins. Segments co-own their files, so they
  /// stay readable even after the owning blocks were dropped.
  std::vector<SalvageSegment> SalvagePrefix(uint64_t owner, uint32_t shard);

  /// Drops every catalog entry of `owner` (e.g. when an RDD dies).
  void DropSalvage(uint64_t owner);

  /// Fresh store-instance id for SpillIdentity.
  static uint64_t NewInstanceId();

  /// Executor attribution for mem.* metrics: tasks set this around their
  /// body so evictions/reloads they trigger are tagged per executor.
  static void SetCurrentExecutor(int32_t executor);
  static int32_t CurrentExecutor();

  // ---- hooks used by Evictable / AccessScope ----------------------------

  void OnAllocated(Evictable* e, uint64_t bytes);
  void OnSealed(Evictable* e);
  void OnRetired(Evictable* e);

  /// Slow path of AccessScope::Pin: the payload is (or may be) evicted.
  /// Reloads it under the governor lock. The caller already holds a pin.
  Status FaultIn(Evictable* e);

 private:
  friend class AccessScope;

  MemoryGovernor() = default;

  void EnforceBudgetLocked();
  bool EvictLocked(Evictable* victim);
  const std::string& SpillDirLocked();

  /// Body of the detached prefetch thread: drains prefetch_queue_.
  void PrefetchLoop();
  /// Reloads (owner, shard)'s evicted payloads within budget headroom.
  void PrefetchPartitionSync(uint64_t owner, uint32_t shard);

  /// Scope-less pin (see AccessScope::Pin): pins `e` and releases the
  /// thread's previous transient pin. Serialized with eviction and retire
  /// by the governor mutex, so the stored pointers never dangle.
  void TransientPin(Evictable* e);

  static std::atomic<bool> engaged_;

  std::mutex mutex_;
  std::vector<Evictable*> registry_;  // sealed payloads, insertion order
  // One transient pin per thread that has ever accessed a payload outside
  // an AccessScope; a slot is replaced by the thread's next scope-less pin
  // and scrubbed by OnRetired when its payload dies. Guarded by mutex_.
  std::map<std::thread::id, Evictable*> transient_pins_;
  std::string spill_dir_;             // resolved lazily
  uint64_t next_spill_file_ = 0;
  bool warned_overcommit_ = false;    // guarded by mutex_

  std::atomic<uint64_t> budget_{0};
  std::atomic<uint64_t> resident_bytes_{0};
  std::atomic<uint64_t> spilled_bytes_{0};
  std::atomic<uint64_t> reserved_bytes_{0};  // admission reservations
  std::atomic<uint64_t> clock_{1};  // LRU tick, bumped per pin

  struct CatalogKey {
    uint64_t owner;
    uint32_t shard;
    bool operator<(const CatalogKey& o) const {
      return owner != o.owner ? owner < o.owner : shard < o.shard;
    }
  };
  struct CatalogEntry {
    uint64_t instance;
    SalvageSegment segment;
  };
  std::mutex catalog_mutex_;
  std::map<CatalogKey, std::vector<CatalogEntry>> catalog_;

  // Prefetch queue, drained by a lazily-started detached thread. The thread
  // is never joined: the governor is a leaky singleton and the thread parks
  // on prefetch_cv_ whenever the queue is empty. Each request carries the
  // enqueueing thread's query id so the prefetch thread can attribute the
  // reload (bytes, skips) to the query that asked for it (obs/query_profile.h).
  struct PrefetchRequest {
    uint64_t owner;
    uint32_t shard;
    uint64_t query_id;
  };
  std::mutex prefetch_mutex_;
  std::condition_variable prefetch_cv_;       // queue became non-empty
  std::condition_variable prefetch_idle_cv_;  // queue drained & thread idle
  std::deque<PrefetchRequest> prefetch_queue_;
  bool prefetch_thread_started_ = false;  // guarded by prefetch_mutex_
  bool prefetch_active_ = false;          // guarded by prefetch_mutex_
};

/// RAII pin scope. The outermost scope on a thread collects every payload
/// pinned through it and releases them all when it closes; nested scopes
/// are inert (pins accumulate in the outermost one, so an operator-level
/// scope keeps its working set pinned across helper calls). Construction
/// is a thread-local check plus one branch when the governor has never
/// been engaged.
class AccessScope {
 public:
  AccessScope();
  ~AccessScope();
  AccessScope(const AccessScope&) = delete;
  AccessScope& operator=(const AccessScope&) = delete;

  /// Pins `e` into the innermost active scope (fault-in if evicted) and
  /// touches its LRU clock. Without an active scope the payload takes a
  /// *transient* pin — held until the same thread's next scope-less pin —
  /// so the pointer the caller is about to read cannot be evicted under it
  /// (not even by a same-thread allocation pushing residency over budget).
  /// Throws ReloadFault if an evicted payload cannot be reloaded.
  /// No-op until the governor is first engaged.
  static void Pin(Evictable* e) {
    if (!MemoryGovernor::Engaged()) return;
    PinSlow(e);
  }

 private:
  static void PinSlow(Evictable* e);

  bool owner_ = false;
  uint64_t id_ = 0;
  std::vector<Evictable*> pinned_;
  // Per-query pinned-byte attribution: the outermost scope charges every
  // payload it pins (once resident) to the profile that was current when
  // the scope first pinned, and releases the whole charge on scope exit.
  // The raw pointer stays valid for the scope's lifetime because profiles
  // are never destroyed (registry entries are leaky, like the governor).
  obs::QueryProfile* profile_ = nullptr;
  uint64_t profile_pinned_bytes_ = 0;
};

/// Test/bench helper: sets a budget (and optionally a spill dir) for the
/// enclosing scope and restores the previous budget on exit.
class ScopedBudget {
 public:
  explicit ScopedBudget(uint64_t budget_bytes,
                        const std::string& spill_dir = "");
  ~ScopedBudget();

 private:
  uint64_t previous_;
};

/// Parses "256m" / "1g" / "4096" style byte sizes (suffixes k/m/g, case-
/// insensitive). Returns InvalidArgument on garbage.
Result<uint64_t> ParseByteSize(const std::string& text);

}  // namespace idf::mem
