#include "mem/governor.h"

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>

#include "common/logging.h"
#include "obs/flight_recorder.h"
#include "obs/metrics_registry.h"
#include "obs/query_profile.h"
#include "obs/trace.h"
#include "testing/chaos.h"

namespace idf::mem {

namespace {

/// mem.* metric handles, resolved once (see obs/metrics_registry.h).
struct MemMetrics {
  obs::Gauge& resident = obs::Registry::Global().GetGauge("mem.resident_bytes");
  obs::Gauge& spilled = obs::Registry::Global().GetGauge("mem.spilled_bytes");
  obs::Gauge& budget = obs::Registry::Global().GetGauge("mem.budget_bytes");
  obs::Counter& evictions = obs::Registry::Global().GetCounter("mem.evictions");
  obs::Counter& reload_faults =
      obs::Registry::Global().GetCounter("mem.reload_faults");
  obs::Counter& pin_blocks =
      obs::Registry::Global().GetCounter("mem.pin_blocks");
  obs::Counter& spill_write_bytes =
      obs::Registry::Global().GetCounter("mem.spill.write_bytes");
  obs::Counter& reload_read_bytes =
      obs::Registry::Global().GetCounter("mem.reload.read_bytes");
  obs::Counter& salvaged_segments =
      obs::Registry::Global().GetCounter("mem.salvage.segments");
  obs::Counter& prefetch_requests =
      obs::Registry::Global().GetCounter("mem.prefetch.requests");
  obs::Counter& prefetch_reloads =
      obs::Registry::Global().GetCounter("mem.prefetch.reloads");
  obs::Counter& prefetch_read_bytes =
      obs::Registry::Global().GetCounter("mem.prefetch.read_bytes");
  obs::Counter& prefetch_skipped =
      obs::Registry::Global().GetCounter("mem.prefetch.skipped");
  obs::Counter& prefetch_failures =
      obs::Registry::Global().GetCounter("mem.prefetch.failures");
  obs::Gauge& reserved =
      obs::Registry::Global().GetGauge("mem.reserved_bytes");

  static MemMetrics& Get() {
    static MemMetrics* metrics = new MemMetrics();
    return *metrics;
  }
};

thread_local AccessScope* t_current_scope = nullptr;
thread_local int32_t t_current_executor = -1;

/// Chaos-bus reload site (src/testing/chaos.h): scripted hooks and armed
/// probability faults, consulted before every payload reload. Production
/// cost is one relaxed load. Called with the governor mutex held — an
/// injected delay therefore widens the eviction/reload race exactly where
/// concurrent readers of the same payload queue up.
Status RunReloadChaos(const SpillIdentity& id, bool prefetch) {
  if (!chaos::ChaosEngine::Active()) return Status::OK();
  return chaos::ChaosEngine::Global().OnReload(id.owner, id.shard, id.index,
                                               prefetch);
}

}  // namespace

std::atomic<bool> MemoryGovernor::engaged_{false};

// ---- SpillFile --------------------------------------------------------------

SpillFile::~SpillFile() {
  std::error_code ec;
  std::filesystem::remove(path_, ec);  // best effort
}

// ---- Evictable --------------------------------------------------------------

Evictable::~Evictable() {
  // The most-derived destructor must have retired the payload already; an
  // entry still registered here would let the governor call pure-virtual
  // payload hooks on a half-destroyed object.
  IDF_CHECK_MSG(!registered_, "Evictable destroyed without retiring");
}

void Evictable::SealForGovernor(uint64_t rows) {
  if (sealed_.exchange(true, std::memory_order_acq_rel)) return;
  rows_ = rows;
  MemoryGovernor::Global().OnSealed(this);
}

void Evictable::RetireFromGovernor() {
  MemoryGovernor::Global().OnRetired(this);
}

void Evictable::AccountAllocated(uint64_t bytes) {
  MemoryGovernor::Global().OnAllocated(this, bytes);
}

// ---- MemoryGovernor ---------------------------------------------------------

MemoryGovernor& MemoryGovernor::Global() {
  static MemoryGovernor* governor = new MemoryGovernor();
  return *governor;
}

void MemoryGovernor::Configure(uint64_t budget_bytes,
                               const std::string& spill_dir) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!spill_dir.empty()) {
      // A per-process subdirectory: concurrent processes pointed at one
      // IDF_SPILL_DIR (e.g. parallel ctest sharing $RUNNER_TEMP) must never
      // see — let alone clobber or truncate — each other's spill files.
      const std::string pid_subdir = "idf-spill-" + std::to_string(::getpid());
      if (std::filesystem::path(spill_dir).filename().string() != pid_subdir) {
        spill_dir_ = (std::filesystem::path(spill_dir) / pid_subdir).string();
      } else {
        spill_dir_ = spill_dir;
      }
    }
    budget_.store(budget_bytes, std::memory_order_relaxed);
    if (budget_bytes > 0) engaged_.store(true, std::memory_order_relaxed);
    MemMetrics::Get().budget.Set(static_cast<double>(budget_bytes));
  }
  if (budget_bytes > 0) EnforceBudget();
}

std::string MemoryGovernor::spill_dir() {
  std::lock_guard<std::mutex> lock(mutex_);
  return SpillDirLocked();
}

const std::string& MemoryGovernor::SpillDirLocked() {
  if (spill_dir_.empty()) {
    std::error_code ec;
    std::filesystem::path dir =
        std::filesystem::temp_directory_path(ec) /
        ("idf-spill-" + std::to_string(::getpid()));
    spill_dir_ = dir.string();
  }
  std::error_code ec;
  std::filesystem::create_directories(spill_dir_, ec);
  return spill_dir_;
}

Status MemoryGovernor::TryReserve(uint64_t bytes) {
  const uint64_t budget = budget_.load(std::memory_order_relaxed);
  if (budget == 0) {
    // No budget, no admission limit — still account so /queries can show
    // outstanding reservations.
    reserved_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    MemMetrics::Get().reserved.Set(
        static_cast<double>(reserved_bytes_.load(std::memory_order_relaxed)));
    return Status::OK();
  }
  uint64_t current = reserved_bytes_.load(std::memory_order_relaxed);
  while (true) {
    if (current + bytes > budget) {
      return Status::ResourceExhausted(
          "reservation of " + std::to_string(bytes) + " bytes exceeds budget (" +
          std::to_string(current) + " of " + std::to_string(budget) +
          " already reserved)");
    }
    if (reserved_bytes_.compare_exchange_weak(current, current + bytes,
                                              std::memory_order_relaxed)) {
      MemMetrics::Get().reserved.Set(static_cast<double>(current + bytes));
      return Status::OK();
    }
  }
}

void MemoryGovernor::ReleaseReservation(uint64_t bytes) {
  uint64_t current = reserved_bytes_.load(std::memory_order_relaxed);
  while (true) {
    const uint64_t next = current >= bytes ? current - bytes : 0;
    if (reserved_bytes_.compare_exchange_weak(current, next,
                                              std::memory_order_relaxed)) {
      MemMetrics::Get().reserved.Set(static_cast<double>(next));
      return;
    }
  }
}

uint64_t MemoryGovernor::NewInstanceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void MemoryGovernor::SetCurrentExecutor(int32_t executor) {
  t_current_executor = executor;
}

int32_t MemoryGovernor::CurrentExecutor() { return t_current_executor; }

void MemoryGovernor::OnAllocated(Evictable* e, uint64_t bytes) {
  (void)e;
  resident_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  MemMetrics::Get().resident.Set(static_cast<double>(resident_bytes()));
  const uint64_t budget = budget_.load(std::memory_order_relaxed);
  if (budget > 0 && resident_bytes() > budget) EnforceBudget();
}

void MemoryGovernor::OnSealed(Evictable* e) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!e->registered_) {
      e->registered_ = true;
      registry_.push_back(e);
    }
  }
  const uint64_t budget = budget_.load(std::memory_order_relaxed);
  if (budget > 0 && resident_bytes() > budget) EnforceBudget();
}

void MemoryGovernor::OnRetired(Evictable* e) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (e->registered_) {
    registry_.erase(std::remove(registry_.begin(), registry_.end(), e),
                    registry_.end());
    e->registered_ = false;
  }
  // Scrub transient pins on the dying payload so no thread's slot dangles
  // into freed memory (the pin itself dies with the object).
  for (auto& [tid, pinned] : transient_pins_) {
    if (pinned == e) pinned = nullptr;
  }
  // Final accounting: a resident payload frees RAM; a spill file may live
  // on in the salvage catalog (shared ownership), but this payload's claim
  // on the spilled-byte gauge ends here.
  if (e->state_.load(std::memory_order_seq_cst) == Evictable::kResident) {
    resident_bytes_.fetch_sub(e->PayloadBytes(), std::memory_order_relaxed);
  } else {
    spilled_bytes_.fetch_sub(e->spill_bytes_, std::memory_order_relaxed);
  }
  e->spill_file_.reset();
  MemMetrics& mm = MemMetrics::Get();
  mm.resident.Set(static_cast<double>(resident_bytes()));
  mm.spilled.Set(static_cast<double>(spilled_bytes()));
}

void MemoryGovernor::EnforceBudget() {
  std::lock_guard<std::mutex> lock(mutex_);
  EnforceBudgetLocked();
}

void MemoryGovernor::EnforceBudgetLocked() {
  const uint64_t budget = budget_.load(std::memory_order_relaxed);
  if (budget == 0) return;
  MemMetrics& mm = MemMetrics::Get();
  bool blocked = false;
  while (resident_bytes() > budget) {
    // Cost-aware LRU: oldest last-access first; among candidates of the
    // same age generation, prefer payloads that already have a spill file
    // (reload cost is a read with no write). Pinned payloads are skipped —
    // that is the "weighted by pin count" degenerate case: a pin makes the
    // eviction cost infinite for as long as it is held.
    Evictable* victim = nullptr;
    uint64_t best_age = 0;
    const uint64_t now = clock_.load(std::memory_order_relaxed);
    for (Evictable* e : registry_) {
      if (e->state_.load(std::memory_order_seq_cst) != Evictable::kResident) {
        continue;
      }
      if (e->pins_.load(std::memory_order_seq_cst) > 0) continue;
      const uint64_t last = e->last_access_.load(std::memory_order_relaxed);
      uint64_t age = now - std::min(now, last) + 1;
      if (e->spill_file_ != nullptr) age *= 2;  // reload is cheap: read-only
      if (victim == nullptr || age > best_age) {
        victim = e;
        best_age = age;
      }
    }
    if (victim == nullptr) {
      // Everything evictable is pinned (or already out): the budget is
      // temporarily overcommitted by the live working set.
      mm.pin_blocks.Increment();
      blocked = true;
      break;
    }
    if (!EvictLocked(victim)) break;
  }
  // Warn once per overcommit episode, not per enforcement call — a tight
  // budget triggers enforcement on every fault, which would flood the log.
  if (blocked && !warned_overcommit_) {
    warned_overcommit_ = true;
    IDF_LOG_WARN("memory budget overcommitted: resident=%llu budget=%llu "
                 "(all evictable payloads pinned)",
                 static_cast<unsigned long long>(resident_bytes()),
                 static_cast<unsigned long long>(budget));
  } else if (!blocked) {
    warned_overcommit_ = false;
  }
}

bool MemoryGovernor::EvictLocked(Evictable* victim) {
  MemMetrics& mm = MemMetrics::Get();
  // Dekker handshake with concurrent pinners (see header).
  victim->state_.store(Evictable::kEvicting, std::memory_order_seq_cst);
  if (victim->pins_.load(std::memory_order_seq_cst) > 0) {
    victim->state_.store(Evictable::kResident, std::memory_order_seq_cst);
    mm.pin_blocks.Increment();
    return true;  // not an error; the enforcement loop picks another victim
  }
  if (victim->spill_file_ == nullptr) {
    obs::Span span("mem", "spill");
    // Pid-qualified so concurrent processes pointed at one IDF_SPILL_DIR
    // (e.g. parallel ctest under $RUNNER_TEMP) never clobber each other.
    const std::string path = SpillDirLocked() + "/seg-" +
                             std::to_string(::getpid()) + "-" +
                             std::to_string(next_spill_file_++) + ".spill";
    Result<uint64_t> written = victim->SpillPayload(path);
    if (!written.ok()) {
      victim->state_.store(Evictable::kResident, std::memory_order_seq_cst);
      IDF_LOG_WARN("spill failed, keeping payload resident: %s",
                   written.status().message().c_str());
      return false;
    }
    victim->spill_bytes_ = *written;
    victim->spill_file_ = std::make_shared<SpillFile>(path);
    span.AddArgInt("bytes", *written);
    mm.spill_write_bytes.Add(*written);
    obs::FlightRecorder::Global().Record(obs::EventType::kSpillWrite, 0,
                                         *written, victim->identity_.owner,
                                         victim->identity_.shard);
    // Salvageable payloads register with the catalog so recovery can read
    // them back even after the owning block is dropped.
    if (victim->identity_.salvageable()) {
      std::lock_guard<std::mutex> lock(catalog_mutex_);
      auto& entries =
          catalog_[CatalogKey{victim->identity_.owner,
                              victim->identity_.shard}];
      entries.push_back(CatalogEntry{
          victim->identity_.instance,
          SalvageSegment{victim->identity_.index, victim->rows_,
                         victim->spill_bytes_, path, victim->spill_file_}});
    }
  }
  // Sealed payloads are immutable, so the spill file stays valid forever: a
  // re-eviction after a reload frees the buffer without rewriting the file.
  const uint64_t bytes = victim->PayloadBytes();
  victim->ReleasePayload();
  victim->state_.store(Evictable::kEvicted, std::memory_order_seq_cst);
  resident_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  spilled_bytes_.fetch_add(victim->spill_bytes_, std::memory_order_relaxed);
  mm.evictions.Increment();
  mm.resident.Set(static_cast<double>(resident_bytes()));
  mm.spilled.Set(static_cast<double>(spilled_bytes()));
  obs::FlightRecorder::Global().Record(obs::EventType::kEvict, 0, bytes,
                                       victim->identity_.owner,
                                       victim->identity_.shard);
  if (t_current_executor >= 0) {
    obs::Registry::Global()
        .GetCounter(obs::TaggedName(
            "mem.evictions",
            {{"executor", std::to_string(t_current_executor)}}))
        .Increment();
  }
  return true;
}

Status MemoryGovernor::FaultIn(Evictable* e) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (e->state_.load(std::memory_order_seq_cst) == Evictable::kResident) {
    return Status::OK();  // raced with another reloader (or evict aborted)
  }
  obs::Span span("mem", "reload");
  IDF_CHECK_MSG(e->spill_file_ != nullptr, "evicted payload has no spill file");
  IDF_RETURN_IF_ERROR(RunReloadChaos(e->identity_, /*prefetch=*/false));
  IDF_RETURN_IF_ERROR(e->ReloadPayload(e->spill_file_->path()));
  e->state_.store(Evictable::kResident, std::memory_order_seq_cst);
  const uint64_t bytes = e->PayloadBytes();
  resident_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  spilled_bytes_.fetch_sub(e->spill_bytes_, std::memory_order_relaxed);
  MemMetrics& mm = MemMetrics::Get();
  mm.reload_faults.Increment();
  mm.reload_read_bytes.Add(e->spill_bytes_);
  mm.resident.Set(static_cast<double>(resident_bytes()));
  mm.spilled.Set(static_cast<double>(spilled_bytes()));
  span.AddArgInt("bytes", e->spill_bytes_);
  obs::FlightRecorder::Global().Record(obs::EventType::kReloadDemand, 0,
                                       e->spill_bytes_, e->identity_.owner,
                                       e->identity_.shard);
  if (t_current_executor >= 0) {
    obs::Registry::Global()
        .GetCounter(obs::TaggedName(
            "mem.reload_faults",
            {{"executor", std::to_string(t_current_executor)}}))
        .Increment();
  }
  // Reloading may push residency over budget; the caller holds a pin on
  // `e`, so enforcement will pick other victims.
  EnforceBudgetLocked();
  return Status::OK();
}

void MemoryGovernor::TransientPin(Evictable* e) {
  // The mutex serializes this with EvictLocked and OnRetired: a non-null
  // slot always points at a live payload, and the new pin is visible to
  // any evictor before it can pick a victim.
  std::lock_guard<std::mutex> lock(mutex_);
  Evictable*& slot = transient_pins_[std::this_thread::get_id()];
  if (slot == e) return;
  if (slot != nullptr) slot->pins_.fetch_sub(1, std::memory_order_seq_cst);
  e->pins_.fetch_add(1, std::memory_order_seq_cst);
  slot = e;
}

ResidencyMap MemoryGovernor::ResidencySnapshot() {
  std::lock_guard<std::mutex> lock(mutex_);
  ResidencyMap map;
  for (Evictable* e : registry_) {
    if (e->identity_.owner == 0) continue;  // anonymous payloads: no key
    ResidencyInfo& info = map[{e->identity_.owner, e->identity_.shard}];
    // kEvicting never shows here: eviction runs under the same mutex.
    if (e->state_.load(std::memory_order_seq_cst) == Evictable::kEvicted) {
      info.spilled_bytes += e->spill_bytes_;
    } else {
      info.resident_bytes += e->PayloadBytes();
    }
    info.last_access = std::max(
        info.last_access, e->last_access_.load(std::memory_order_relaxed));
  }
  return map;
}

size_t MemoryGovernor::EvictPartition(uint64_t owner, uint32_t shard) {
  // Forced eviction implies out-of-core behavior: readers must start taking
  // the pin/fault-in path even if no budget was ever configured.
  engaged_.store(true, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  size_t evicted = 0;
  // EvictLocked mutates neither the registry nor our iteration position.
  for (Evictable* e : registry_) {
    if (e->identity_.owner != owner || e->identity_.shard != shard) continue;
    if (e->state_.load(std::memory_order_seq_cst) != Evictable::kResident) {
      continue;
    }
    if (e->pins_.load(std::memory_order_seq_cst) > 0) continue;
    if (EvictLocked(e) &&
        e->state_.load(std::memory_order_seq_cst) == Evictable::kEvicted) {
      ++evicted;
    }
  }
  return evicted;
}

uint64_t MemoryGovernor::TotalPinsForTesting() {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t pins = 0;
  for (Evictable* e : registry_) {
    pins += e->pins_.load(std::memory_order_seq_cst);
  }
  return pins;
}

size_t MemoryGovernor::ScrubTransientPinsForTesting() {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t released = 0;
  for (auto& entry : transient_pins_) {
    if (entry.second == nullptr) continue;
    entry.second->pins_.fetch_sub(1, std::memory_order_seq_cst);
    entry.second = nullptr;
    ++released;
  }
  return released;
}

void MemoryGovernor::PrefetchPartition(uint64_t owner, uint32_t shard) {
  if (!Engaged() || budget_bytes() == 0 || owner == 0) return;
  MemMetrics::Get().prefetch_requests.Increment();
  std::lock_guard<std::mutex> lock(prefetch_mutex_);
  for (const auto& queued : prefetch_queue_) {
    if (queued.owner == owner && queued.shard == shard) return;  // coalesce
  }
  // Stamp the enqueuer's query id: the prefetch thread re-installs it so
  // the reload is charged to the query whose stage asked for it.
  prefetch_queue_.push_back({owner, shard, obs::CurrentQueryId()});
  if (!prefetch_thread_started_) {
    prefetch_thread_started_ = true;
    // Detached on purpose: the governor is a leaky singleton, and the
    // thread parks on prefetch_cv_ whenever the queue is empty.
    std::thread(&MemoryGovernor::PrefetchLoop, this).detach();
  }
  prefetch_cv_.notify_one();
}

void MemoryGovernor::PrefetchLoop() {
  for (;;) {
    PrefetchRequest target;
    {
      std::unique_lock<std::mutex> lock(prefetch_mutex_);
      prefetch_active_ = false;
      prefetch_idle_cv_.notify_all();
      prefetch_cv_.wait(lock, [&] { return !prefetch_queue_.empty(); });
      target = prefetch_queue_.front();
      prefetch_queue_.pop_front();
      prefetch_active_ = true;
    }
    // Attribute the reload (kReloadPrefetch / kPrefetchSkip events and the
    // profile bytes they feed) to the query that requested the prefetch.
    obs::QueryScope query_scope(target.query_id);
    PrefetchPartitionSync(target.owner, target.shard);
  }
}

void MemoryGovernor::DrainPrefetchForTesting() {
  std::unique_lock<std::mutex> lock(prefetch_mutex_);
  prefetch_idle_cv_.wait(
      lock, [&] { return prefetch_queue_.empty() && !prefetch_active_; });
}

void MemoryGovernor::PrefetchPartitionSync(uint64_t owner, uint32_t shard) {
  obs::Span span("mem", "prefetch");
  span.AddArgInt("owner", static_cast<int64_t>(owner));
  span.AddArgInt("shard", shard);
  MemMetrics& mm = MemMetrics::Get();
  uint64_t reloads = 0;
  uint64_t bytes = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t budget = budget_.load(std::memory_order_relaxed);
  for (Evictable* e : registry_) {
    if (e->identity_.owner != owner || e->identity_.shard != shard) continue;
    if (e->state_.load(std::memory_order_seq_cst) != Evictable::kEvicted) {
      continue;
    }
    // Headroom-only: a reload that would overflow the budget is skipped
    // rather than letting enforcement evict on the prefetcher's behalf —
    // prefetch must never push out the running task's working set.
    if (budget == 0 || resident_bytes() + e->spill_bytes_ > budget) {
      mm.prefetch_skipped.Increment();
      obs::FlightRecorder::Global().Record(obs::EventType::kPrefetchSkip, 0,
                                           e->spill_bytes_, owner, shard);
      continue;
    }
    Status loaded = RunReloadChaos(e->identity_, /*prefetch=*/true);
    if (loaded.ok()) loaded = e->ReloadPayload(e->spill_file_->path());
    if (!loaded.ok()) {
      // Leave the payload evicted: the demand fault-in path will retry the
      // read and surface a persistent failure to the task.
      mm.prefetch_failures.Increment();
      IDF_LOG_DEBUG("prefetch reload failed (demand path will retry): %s",
                    loaded.message().c_str());
      continue;
    }
    e->state_.store(Evictable::kResident, std::memory_order_seq_cst);
    // Freshen the LRU tick so the payload is not the next victim before the
    // task it was prefetched for gets to touch it.
    e->last_access_.store(clock_.fetch_add(1, std::memory_order_relaxed),
                          std::memory_order_relaxed);
    const uint64_t payload = e->PayloadBytes();
    resident_bytes_.fetch_add(payload, std::memory_order_relaxed);
    spilled_bytes_.fetch_sub(e->spill_bytes_, std::memory_order_relaxed);
    obs::FlightRecorder::Global().Record(obs::EventType::kReloadPrefetch, 0,
                                         e->spill_bytes_, owner, shard);
    bytes += e->spill_bytes_;
    ++reloads;
  }
  if (reloads > 0) {
    mm.prefetch_reloads.Add(reloads);
    mm.prefetch_read_bytes.Add(bytes);
    mm.resident.Set(static_cast<double>(resident_bytes()));
    mm.spilled.Set(static_cast<double>(spilled_bytes()));
  }
  span.AddArgInt("reloads", static_cast<int64_t>(reloads));
  span.AddArgInt("bytes", static_cast<int64_t>(bytes));
}

std::vector<SalvageSegment> MemoryGovernor::SalvagePrefix(uint64_t owner,
                                                          uint32_t shard) {
  std::lock_guard<std::mutex> lock(catalog_mutex_);
  auto it = catalog_.find(CatalogKey{owner, shard});
  if (it == catalog_.end()) return {};
  // Group by store instance; different incarnations (original build vs. a
  // recompute) may slice the same rows into different batch boundaries, so
  // segments must never be mixed across instances.
  std::map<uint64_t, std::map<uint32_t, const SalvageSegment*>> by_instance;
  for (const CatalogEntry& entry : it->second) {
    by_instance[entry.instance].emplace(entry.segment.index, &entry.segment);
  }
  std::vector<SalvageSegment> best;
  uint64_t best_rows = 0;
  for (const auto& [instance, segments] : by_instance) {
    std::vector<SalvageSegment> prefix;
    uint64_t rows = 0;
    uint32_t expect = 0;
    for (const auto& [index, segment] : segments) {
      if (index != expect) break;  // gap: prefix ends
      prefix.push_back(*segment);
      rows += segment->rows;
      ++expect;
    }
    if (rows > best_rows) {
      best_rows = rows;
      best = std::move(prefix);
    }
  }
  MemMetrics::Get().salvaged_segments.Add(best.size());
  return best;
}

void MemoryGovernor::DropSalvage(uint64_t owner) {
  std::lock_guard<std::mutex> lock(catalog_mutex_);
  for (auto it = catalog_.begin(); it != catalog_.end();) {
    if (it->first.owner == owner) {
      it = catalog_.erase(it);
    } else {
      ++it;
    }
  }
}

// ---- AccessScope ------------------------------------------------------------

AccessScope::AccessScope() {
  if (t_current_scope != nullptr) return;  // nested: inert
  static std::atomic<uint64_t> next_id{1};
  id_ = next_id.fetch_add(1, std::memory_order_relaxed);
  owner_ = true;
  t_current_scope = this;
}

AccessScope::~AccessScope() {
  if (!owner_) return;
  t_current_scope = nullptr;
  for (Evictable* e : pinned_) {
    e->pins_.fetch_sub(1, std::memory_order_seq_cst);
  }
  if (profile_ != nullptr) profile_->ReleasePinned(profile_pinned_bytes_);
}

void AccessScope::PinSlow(Evictable* e) {
  MemoryGovernor& governor = MemoryGovernor::Global();
  AccessScope* scope = t_current_scope;
  if (scope != nullptr &&
      e->scope_hint_.load(std::memory_order_relaxed) == scope->id_) {
    return;  // already pinned by this scope; still pinned, still resident
  }
  e->last_access_.store(
      governor.clock_.fetch_add(1, std::memory_order_relaxed),
      std::memory_order_relaxed);
  if (scope == nullptr) {
    // No scope: take a transient pin — released by this thread's next
    // scope-less pin — so the payload cannot be evicted (by a concurrent
    // enforcer, or a same-thread allocation pushing over budget) while the
    // caller still holds the pointer it is about to read.
    governor.TransientPin(e);
    if (e->state_.load(std::memory_order_seq_cst) != Evictable::kResident) {
      Status reloaded = governor.FaultIn(e);
      if (!reloaded.ok()) throw ReloadFault(std::move(reloaded));
    }
    return;
  }
  e->pins_.fetch_add(1, std::memory_order_seq_cst);
  scope->pinned_.push_back(e);
  e->scope_hint_.store(scope->id_, std::memory_order_relaxed);
  if (e->state_.load(std::memory_order_seq_cst) != Evictable::kResident) {
    Status reloaded = governor.FaultIn(e);
    if (!reloaded.ok()) throw ReloadFault(std::move(reloaded));
  }
  // Charge the payload to the current query's pinned-byte high-water mark
  // only after it is resident (PayloadBytes of an evicted payload would
  // under-count). Released in bulk when the outermost scope closes.
  if (scope->profile_ == nullptr) {
    scope->profile_ = obs::CurrentQueryProfile();
  }
  const uint64_t payload = e->PayloadBytes();
  scope->profile_->AddPinned(payload);
  scope->profile_pinned_bytes_ += payload;
}

// ---- ScopedBudget -----------------------------------------------------------

ScopedBudget::ScopedBudget(uint64_t budget_bytes, const std::string& spill_dir)
    : previous_(MemoryGovernor::Global().budget_bytes()) {
  MemoryGovernor::Global().Configure(budget_bytes, spill_dir);
}

ScopedBudget::~ScopedBudget() {
  MemoryGovernor::Global().Configure(previous_);
}

// ---- ParseByteSize ----------------------------------------------------------

Result<uint64_t> ParseByteSize(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("empty byte size");
  // std::stoull accepts a leading '-' and wraps ("-1" -> UINT64_MAX), and
  // skips whitespace / accepts '+'; a byte size must start with a digit.
  if (!std::isdigit(static_cast<unsigned char>(text[0]))) {
    return Status::InvalidArgument("bad byte size '" + text + "'");
  }
  size_t pos = 0;
  unsigned long long value = 0;
  try {
    value = std::stoull(text, &pos);
  } catch (const std::exception&) {
    return Status::InvalidArgument("bad byte size '" + text + "'");
  }
  uint64_t multiplier = 1;
  if (pos < text.size()) {
    std::string suffix = text.substr(pos);
    while (!suffix.empty() && suffix.back() == 'b') suffix.pop_back();
    if (suffix.size() == 1) {
      switch (std::tolower(static_cast<unsigned char>(suffix[0]))) {
        case 'k': multiplier = 1ull << 10; break;
        case 'm': multiplier = 1ull << 20; break;
        case 'g': multiplier = 1ull << 30; break;
        default: return Status::InvalidArgument("bad byte size '" + text + "'");
      }
    } else if (!suffix.empty()) {
      return Status::InvalidArgument("bad byte size '" + text + "'");
    }
  }
  return static_cast<uint64_t>(value) * multiplier;
}

}  // namespace idf::mem
