// Real-time social network monitoring & dashboarding (the paper's §II
// second motivating workload, on the SNB-style graph).
//
// New "follows" edges form continuously; the dashboard repeatedly answers
// neighbourhood queries for trending users: who do they follow (indexed
// lookup + join with the vertex table), and how does their out-degree grow
// across appended versions. Divergent what-if appends (paper Listing 2) are
// also shown: two hypothetical edge sets branch from the same snapshot.
//
// Build & run:  ./build/examples/social_monitoring
#include <cstdio>

#include "bench/bench_util.h"

#include "common/timer.h"
#include "core/indexed_dataframe.h"
#include "workload/snb.h"

using namespace idf;

int main(int argc, char** argv) {
  idf::bench::ObsGuard obs(argc, argv);
  SessionOptions options;
  options.cluster.num_workers = 4;
  options.cluster.executors_per_worker = 2;
  options.cluster.cores_per_executor = 4;
  options.default_partitions = 8;
  Session session(options);

  SnbConfig config;
  config.num_vertices = 20000;
  config.num_edges = 200000;
  config.partitions = 8;
  SnbGenerator generator(config);

  std::printf("== social graph: %llu vertices, %llu power-law edges ==\n",
              static_cast<unsigned long long>(config.num_vertices),
              static_cast<unsigned long long>(config.num_edges));

  DataFrame edges = generator.Edges(session).value();
  DataFrame vertices = generator.Vertices(session).value();
  IndexedDataFrame graph =
      IndexedDataFrame::Create(edges, "edge_source").value().Cache();
  IndexedDataFrame people =
      IndexedDataFrame::Create(vertices, "id").value().Cache();

  // Dashboard tick: neighbourhood of the most-followed users (ranks 0..2 of
  // the Zipf distribution are the celebrities).
  for (int64_t celebrity = 0; celebrity < 3; ++celebrity) {
    Stopwatch timer;
    auto following = SnbShortQuery(3, graph.AsDataFrame(),
                                   people.AsDataFrame(), celebrity)
                         .Collect()
                         .value();
    std::printf("user %lld follows %zu accounts (SQ3 in %.1f ms)\n",
                static_cast<long long>(celebrity), following.rows.size(),
                timer.ElapsedSeconds() * 1e3);
  }

  // Continuous edge formation: append batches, watch a degree grow.
  const int64_t watched = 1;
  IndexedDataFrame current = graph;
  for (int tick = 1; tick <= 3; ++tick) {
    std::vector<RowVec> new_edges;
    for (int64_t i = 0; i < 50; ++i) {
      new_edges.push_back({Value::Int64(watched),
                           Value::Int64((watched + tick * 100 + i) %
                                        static_cast<int64_t>(
                                            config.num_vertices)),
                           Value::Int64(1700000000 + tick), Value::Float64(1)});
    }
    DataFrame batch = session
                          .CreateTable("tick" + std::to_string(tick),
                                       SnbGenerator::EdgeSchema(), new_edges)
                          .value();
    current = current.AppendRows(batch).value();
    auto deg = current.GetRows(Value::Int64(watched)).value();
    std::printf("tick %d: user %lld degree = %zu (version %llu)\n", tick,
                static_cast<long long>(watched), deg.rows.size(),
                static_cast<unsigned long long>(current.version()));
  }

  // What-if analysis (Listing 2): two divergent futures from one snapshot.
  DataFrame scenario_a =
      session
          .CreateTable("scenario_a", SnbGenerator::EdgeSchema(),
                       {{Value::Int64(watched), Value::Int64(9999),
                         Value::Int64(1700001000), Value::Float64(1)}})
          .value();
  DataFrame scenario_b =
      session
          .CreateTable("scenario_b", SnbGenerator::EdgeSchema(),
                       {{Value::Int64(watched), Value::Int64(8888),
                         Value::Int64(1700002000), Value::Float64(1)},
                        {Value::Int64(watched), Value::Int64(7777),
                         Value::Int64(1700002000), Value::Float64(1)}})
          .value();
  IndexedDataFrame future_a = current.AppendRows(scenario_a).value();
  IndexedDataFrame future_b = current.AppendRows(scenario_b).value();
  std::printf(
      "what-if: base degree %zu | scenario A %zu | scenario B %zu "
      "(versions %llu/%llu/%llu coexist)\n",
      current.GetRows(Value::Int64(watched)).value().rows.size(),
      future_a.GetRows(Value::Int64(watched)).value().rows.size(),
      future_b.GetRows(Value::Int64(watched)).value().rows.size(),
      static_cast<unsigned long long>(current.version()),
      static_cast<unsigned long long>(future_a.version()),
      static_cast<unsigned long long>(future_b.version()));

  // City-level aggregate for the dashboard footer (SQ7 analogue).
  auto by_city = SnbShortQuery(7, current.AsDataFrame(), people.AsDataFrame(),
                               watched)
                     .Collect()
                     .value();
  std::printf("user %lld follows into %zu cities\n",
              static_cast<long long>(watched), by_city.rows.size());
  return 0;
}
