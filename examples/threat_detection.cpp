// Threat detection & response (the paper's §II motivating workload, after
// Brezinski & Armbrust's "Threat Detection and Response at Scale").
//
// A Zeek/Bro-style connection log is indexed on source IP. New connections
// stream in as fine-grained appends; after every micro-batch the analyst
// pipeline (1) joins the freshest version against a threat watchlist and
// (2) drills into the top offender with interactive point lookups —
// without ever reloading the dataset, because appends are in-place
// multi-version snapshots.
//
// Build & run:  ./build/examples/threat_detection
#include <cstdio>

#include "bench/bench_util.h"

#include "common/timer.h"
#include "core/indexed_dataframe.h"
#include "workload/broconn.h"

using namespace idf;

int main(int argc, char** argv) {
  idf::bench::ObsGuard obs(argc, argv);
  SessionOptions options;
  options.cluster.num_workers = 4;
  options.cluster.executors_per_worker = 2;
  options.cluster.cores_per_executor = 4;
  options.default_partitions = 8;
  Session session(options);

  BroconnConfig config;
  config.num_connections = 200000;
  config.num_hosts = 20000;
  config.partitions = 8;
  BroconnGenerator generator(config);

  std::printf("== threat detection on a %llu-connection Bro/Zeek log ==\n",
              static_cast<unsigned long long>(config.num_connections));

  DataFrame conn_log = generator.Connections(session).value();
  Stopwatch index_timer;
  IndexedDataFrame live =
      IndexedDataFrame::Create(conn_log, "src_ip").value().Cache();
  std::printf("indexed %llu connections on src_ip in %.2fs (one-time cost)\n",
              static_cast<unsigned long long>(live.num_rows()),
              index_timer.ElapsedSeconds());

  DataFrame watchlist = generator.Watchlist(session, 200, /*seed=*/17).value();

  // Streaming loop: append a micro-batch, re-run the watchlist join on the
  // fresh version, drill into the loudest host.
  for (int batch = 1; batch <= 5; ++batch) {
    DataFrame incoming =
        generator.ConnectionSample(session, 2000, /*seed=*/1000 + batch)
            .value();
    Stopwatch append_timer;
    live = live.AppendRows(incoming).value();
    const double append_s = append_timer.ElapsedSeconds();

    Stopwatch join_timer;
    auto hits = live.Join(watchlist, "ip")
                    .Agg({"src_ip"}, {AggSpec::Count("connections"),
                                      AggSpec::Sum("orig_bytes", "bytes_out")})
                    .Collect()
                    .value();
    const double join_s = join_timer.ElapsedSeconds();

    int64_t worst_ip = 0, worst_count = -1;
    for (const RowVec& row : hits.rows) {
      if (row[1].int64_value() > worst_count) {
        worst_count = row[1].int64_value();
        worst_ip = row[0].int64_value();
      }
    }
    std::printf(
        "batch %d: +2000 conns in %.0f ms | watchlist join: %zu hot hosts "
        "in %.0f ms (v%llu)\n",
        batch, append_s * 1e3, hits.rows.size(), join_s * 1e3,
        static_cast<unsigned long long>(live.version()));

    if (worst_count > 0) {
      Stopwatch lookup_timer;
      auto detail = live.GetRows(Value::Int64(worst_ip)).value();
      std::printf(
          "    drill-down: host %lld has %zu connections "
          "(point lookup in %.1f ms)\n",
          static_cast<long long>(worst_ip), detail.rows.size(),
          lookup_timer.ElapsedSeconds() * 1e3);
    }
  }

  std::printf("done; final version %llu holds %llu connections\n",
              static_cast<unsigned long long>(live.version()),
              static_cast<unsigned long long>(live.num_rows()));
  return 0;
}
