// SQL analytics over indexed tables (the Fig. 2 "Users write SQL queries"
// path): register tables and indexes in the catalog, run textual SQL, and
// watch the planner switch between indexed and vanilla operators.
//
// Build & run:  ./build/examples/sql_analytics
#include <cstdio>

#include "bench/bench_util.h"

#include "core/indexed_dataframe.h"
#include "sql/session.h"
#include "workload/tpcds.h"

using namespace idf;

namespace {

void Run(Session& session, const char* sql) {
  std::printf("\nSQL> %s\n", sql);
  auto df = session.Sql(sql);
  if (!df.ok()) {
    std::printf("  error: %s\n", df.status().ToString().c_str());
    return;
  }
  std::printf("%s", df->ExplainPhysical().value().c_str());
  auto result = df->Collect().value();
  const size_t show = std::min<size_t>(4, result.rows.size());
  for (size_t i = 0; i < show; ++i) {
    std::string line = "  | ";
    for (size_t c = 0; c < result.rows[i].size(); ++c) {
      if (c) line += ", ";
      line += result.rows[i][c].ToString();
    }
    std::printf("%s\n", line.c_str());
  }
  if (result.rows.size() > show) {
    std::printf("  | ... (%zu rows total)\n", result.rows.size());
  }
}

}  // namespace

int main(int argc, char** argv) {
  idf::bench::ObsGuard obs(argc, argv);
  SessionOptions options;
  options.cluster.num_workers = 4;
  options.cluster.executors_per_worker = 2;
  options.cluster.cores_per_executor = 4;
  options.default_partitions = 8;
  Session session(options);

  // A small TPC-DS-style warehouse.
  TpcdsConfig config;
  config.scale_factor = 0.5;  // 60k sales rows
  config.partitions = 8;
  TpcdsGenerator generator(config);
  DataFrame sales = generator.StoreSales(session).value();
  (void)generator.DateDim(session).value();
  std::printf("catalog: store_sales (%llu rows), date_dim (%llu rows)\n",
              static_cast<unsigned long long>(sales.Count().value()),
              static_cast<unsigned long long>(config.date_rows));

  // Plain SQL over the vanilla cached tables.
  Run(session,
      "SELECT d_year, COUNT(*) AS days FROM date_dim "
      "GROUP BY d_year ORDER BY d_year LIMIT 4");

  Run(session,
      "SELECT ss_item_sk, ss_sales_price FROM store_sales "
      "WHERE ss_sales_price > 199.0 ORDER BY ss_sales_price DESC LIMIT 3");

  // Index store_sales on its date key and register the indexed view: the
  // same SQL now plans indexed operators.
  IndexedDataFrame indexed =
      IndexedDataFrame::Create(sales, "ss_sold_date_sk").value().Cache();
  indexed.RegisterAs("sales_idx");

  Run(session, "SELECT * FROM sales_idx WHERE ss_sold_date_sk = 1200 LIMIT 3");

  Run(session,
      "SELECT d_year, COUNT(*) AS n, SUM(ss_sales_price) AS revenue "
      "FROM sales_idx JOIN date_dim ON ss_sold_date_sk = d_date_sk "
      "WHERE d_year = 2001 GROUP BY d_year");

  // Appends flow through SQL too: re-register the new version.
  DataFrame fresh =
      session
          .CreateTable("fresh", TpcdsGenerator::StoreSalesSchema(),
                       {{Value::Int32(1200), Value::Int64(99), Value::Int64(1),
                         Value::Int32(1), Value::Float64(999.0)}})
          .value();
  indexed.AppendRows(fresh).value().RegisterAs("sales_idx");
  Run(session,
      "SELECT COUNT(*) AS matches FROM sales_idx WHERE ss_sold_date_sk = 1200");
  return 0;
}
