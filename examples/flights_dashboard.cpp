// Interactive analytics on the US-Flights-style dataset (§IV-E, Fig. 15):
// the dashboard mixes string-keyed lookups (tail numbers), int-keyed point
// queries (flight numbers), an indexed join with the planes dimension, and
// a columnar-friendly aggregate — illustrating where the index helps and
// where the row layout does not.
//
// Build & run:  ./build/examples/flights_dashboard
#include <cstdio>

#include "bench/bench_util.h"

#include "common/timer.h"
#include "core/indexed_dataframe.h"
#include "workload/flights.h"

using namespace idf;

namespace {

double TimeMs(const std::function<void()>& fn) {
  Stopwatch timer;
  fn();
  return timer.ElapsedSeconds() * 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  idf::bench::ObsGuard obs(argc, argv);
  SessionOptions options;
  options.cluster.num_workers = 4;
  options.cluster.executors_per_worker = 2;
  options.cluster.cores_per_executor = 4;
  options.default_partitions = 8;
  Session session(options);

  FlightsConfig config;
  config.num_flights = 300000;
  config.num_planes = 3000;
  config.partitions = 8;
  FlightsGenerator generator(config);

  DataFrame flights = generator.Flights(session).value();
  DataFrame planes = generator.Planes(session).value();
  std::printf("== flights dashboard: %llu flights, %llu planes ==\n",
              static_cast<unsigned long long>(config.num_flights),
              static_cast<unsigned long long>(config.num_planes));

  // Two indexes over the same data, as an analyst would keep both hot:
  // by tail number (string) and by flight number (int).
  IndexedDataFrame by_tail =
      IndexedDataFrame::Create(flights, "tail_num").value().Cache();
  IndexedDataFrame by_num =
      IndexedDataFrame::Create(flights, "flight_num").value().Cache();

  // Q2: history of one aircraft (string point query).
  const std::string tail = FlightsGenerator::TailNum(7);
  size_t tail_rows = 0;
  const double q2_ms = TimeMs([&] {
    tail_rows = by_tail.GetRows(Value::String(tail)).value().rows.size();
  });
  std::printf("Q2 aircraft %s: %zu flights (%.1f ms, string key)\n",
              tail.c_str(), tail_rows, q2_ms);

  // Q5-Q7: point queries with 10/100/1000 matches (int key).
  for (int32_t key : {FlightsConfig::kKey10, FlightsConfig::kKey100,
                      FlightsConfig::kKey1000}) {
    size_t matches = 0;
    const double ms = TimeMs([&] {
      matches = by_num.GetRows(Value::Int32(key)).value().rows.size();
    });
    std::printf("point query flight %d: %zu matches (%.1f ms)\n", key, matches,
                ms);
  }

  // Q1: enrich flights with plane metadata via the indexed join.
  QueryMetrics join_metrics;
  uint64_t joined = 0;
  const double q1_ms = TimeMs([&] {
    joined = by_tail.Join(planes, "tail_num").Count(&join_metrics).value();
  });
  std::printf("Q1 flights x planes: %llu rows (%.0f ms, %llu index probes)\n",
              static_cast<unsigned long long>(joined), q1_ms,
              static_cast<unsigned long long>(join_metrics.totals.index_probes));

  // Q3: join flights against its own delayed subset (int key).
  DataFrame short_haul =
      flights.Filter(Lt(Col("flight_num"), Lit(int32_t{200})));
  uint64_t q3 = 0;
  const double q3_ms = TimeMs([&] {
    q3 = by_num.Join(short_haul.Select({"flight_num", "arr_delay"}),
                     "flight_num")
             .Count()
             .value();
  });
  std::printf("Q3 self-join on flight_num<200: %llu rows (%.0f ms)\n",
              static_cast<unsigned long long>(q3), q3_ms);

  // A columnar-friendly aggregate: the dashboard's delay-by-origin tile.
  // This deliberately runs on the *vanilla* cached table — the row-wise
  // indexed layout would be slower for a full scan + group-by (Fig. 8).
  auto tile = flights
                  .Agg({"origin"}, {AggSpec::Avg("arr_delay", "avg_delay"),
                                    AggSpec::Count("flights")})
                  .Collect()
                  .value();
  std::printf("delay tile (%zu origins):\n", tile.rows.size());
  for (size_t i = 0; i < std::min<size_t>(3, tile.rows.size()); ++i) {
    std::printf("  %s: avg arrival delay %.1f min over %lld flights\n",
                tile.rows[i][0].string_value().c_str(),
                tile.rows[i][1].float64_value(),
                static_cast<long long>(tile.rows[i][2].int64_value()));
  }
  return 0;
}
