// Quickstart: the Indexed DataFrame API tour (the paper's Listing 1).
//
//   val df = spark.read(...)          -> session.CreateTable(...)
//   val idf = df.createIndex(0).cache -> IndexedDataFrame::Create(df, "col")
//   idf.getRows(key)                  -> indexed.GetRows(key)
//   idf.appendRows(other)             -> indexed.AppendRows(other)
//   idf.join(right, "k == k")         -> indexed.Join(right, "k")
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "bench/bench_util.h"

#include "core/indexed_dataframe.h"
#include "sql/session.h"

using namespace idf;

int main(int argc, char** argv) {
  idf::bench::ObsGuard obs(argc, argv);
  // A 4-worker simulated cluster (see DESIGN.md: real task execution,
  // modeled placement/network).
  SessionOptions options;
  options.cluster.num_workers = 4;
  options.cluster.executors_per_worker = 2;
  options.cluster.cores_per_executor = 4;
  options.default_partitions = 8;
  Session session(options);

  // 1. Create a regular (columnar, cached) dataframe.
  auto schema = std::make_shared<Schema>(Schema({
      {"user_id", TypeId::kInt64, false},
      {"action", TypeId::kString, false},
      {"amount", TypeId::kFloat64, true},
  }));
  std::vector<RowVec> rows;
  for (int64_t i = 0; i < 10000; ++i) {
    rows.push_back({Value::Int64(i % 500),
                    Value::String(i % 3 == 0 ? "buy" : "view"),
                    Value::Float64(static_cast<double>(i % 97))});
  }
  DataFrame events = session.CreateTable("events", schema, rows).value();
  std::printf("created 'events' with %llu rows\n",
              static_cast<unsigned long long>(events.Count().value()));

  // 2. createIndex + cache (Listing 1): index on user_id.
  IndexedDataFrame indexed =
      IndexedDataFrame::Create(events, "user_id").value().Cache();
  std::printf("indexed on '%s' across %u partitions (version %llu)\n",
              indexed.indexed_column_name().c_str(), indexed.num_partitions(),
              static_cast<unsigned long long>(indexed.version()));

  // 3. getRows: point lookup.
  CollectedTable user42 = indexed.GetRows(Value::Int64(42)).value();
  std::printf("getRows(42): %zu events\n", user42.rows.size());

  // 4. appendRows: fine-grained append returns a NEW version; the old
  //    handle still sees the old data (multi-version concurrency control).
  DataFrame fresh =
      session
          .CreateTable("fresh", schema,
                       {{Value::Int64(42), Value::String("buy"),
                         Value::Float64(99.5)},
                        {Value::Int64(42), Value::String("refund"),
                         Value::Float64(-99.5)}})
          .value();
  IndexedDataFrame v1 = indexed.AppendRows(fresh).value();
  std::printf("after append: v%llu sees %zu events for user 42, "
              "v%llu still sees %zu\n",
              static_cast<unsigned long long>(v1.version()),
              v1.GetRows(Value::Int64(42)).value().rows.size(),
              static_cast<unsigned long long>(indexed.version()),
              indexed.GetRows(Value::Int64(42)).value().rows.size());

  // 5. Indexed join: the index is the pre-built build side.
  auto probe_schema = std::make_shared<Schema>(Schema({
      {"uid", TypeId::kInt64, false},
      {"segment", TypeId::kString, false},
  }));
  DataFrame segments =
      session
          .CreateTable("segments", probe_schema,
                       {{Value::Int64(42), Value::String("vip")},
                        {Value::Int64(7), Value::String("new")}})
          .value();
  QueryMetrics metrics;
  auto joined = v1.Join(segments, "uid").Collect(&metrics);
  std::printf("indexed join matched %zu rows "
              "(%llu index probes, %.1f KB shuffled)\n",
              joined.value().rows.size(),
              static_cast<unsigned long long>(metrics.totals.index_probes),
              metrics.totals.shuffle_bytes_written / 1024.0);

  // 6. The same handle is a regular DataFrame: SQL operators compose, and
  //    the planner picks indexed operators automatically when they apply.
  auto plan = v1.AsDataFrame()
                  .Filter(Eq(Col("user_id"), Lit(int64_t{42})))
                  .ExplainPhysical();
  std::printf("physical plan for filter on the indexed column:\n%s",
              plan.value().c_str());
  return 0;
}
